"""A policy-driven BGP speaker.

Each AS in the propagation simulator is represented by a
:class:`BGPSpeaker` that

* originates its own prefixes,
* imports announcements from neighbours (applying LOCAL_PREF assignment
  and community tagging according to its :class:`~repro.bgp.policy.RoutingPolicy`),
* runs the BGP decision process to maintain a Loc-RIB, and
* exports its best routes to neighbours, subject to the (possibly
  relaxed) valley-free export rules.

The decision process implements the attribute comparisons that matter
for the reproduction: highest LOCAL_PREF, then shortest AS path, then
lowest neighbour ASN as the deterministic tie breaker.

Performance notes
-----------------

The speaker keeps, next to the per-neighbour Adj-RIB-In tables, a
**per-prefix candidate index** (``prefix -> {neighbour: route}``).  The
decision process therefore only looks at the neighbours that actually
hold a route for the prefix instead of scanning every Adj-RIB-In — on
hub ASes (hundreds of sessions, the cost hot-spot predicted by the
scale-free-network literature) this turns each decision from O(degree)
into O(holders).  The sorted neighbour views used by the export side are
cached per AFI and invalidated when sessions change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot


#: Sentinel import-defaults value: the policy customizes its import
#: hooks, so local_pref_for/import_communities must run per route.
_CONSULT_POLICY = object()


@dataclass(frozen=True, slots=True)
class Neighbor:
    """A BGP adjacency and the relationship the local AS has towards it.

    ``relationship`` is from the local AS's point of view and may differ
    per address family (hybrid links!), hence one :class:`Neighbor` entry
    per AFI.
    """

    asn: int
    relationship: Relationship


class BGPSpeaker:
    """One AS participating in the route propagation."""

    __slots__ = (
        "asn",
        "policy",
        "_neighbors",
        "_adj_rib_in",
        "loc_rib",
        "_local_routes",
        "_sorted_neighbors",
        "_routes_by_prefix",
        "_import_defaults",
    )

    def __init__(self, asn: int, policy: Optional[RoutingPolicy] = None) -> None:
        self.asn = asn
        self.policy = policy or RoutingPolicy(asn=asn)
        # Per-AFI neighbour tables: asn -> Neighbor.
        self._neighbors: Dict[AFI, Dict[int, Neighbor]] = {AFI.IPV4: {}, AFI.IPV6: {}}
        self._adj_rib_in: Dict[int, AdjRibIn] = {}
        self.loc_rib = LocRib()
        self._local_routes: Dict[Prefix, Route] = {}
        # Cached sorted neighbour tuples per AFI (invalidated by
        # add_neighbor) and the per-prefix candidate index.
        self._sorted_neighbors: Dict[AFI, Optional[Tuple[Neighbor, ...]]] = {
            AFI.IPV4: None,
            AFI.IPV6: None,
        }
        self._routes_by_prefix: Dict[Prefix, Dict[int, Route]] = {}
        # relationship -> (LOCAL_PREF, communities-to-add) for the
        # no-TE-override case, or the _CONSULT_POLICY sentinel for
        # policies with custom import hooks; rebuilt lazily (see
        # reset_import_cache).
        self._import_defaults = None

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def add_neighbor(self, asn: int, relationship: Relationship, afi: AFI) -> None:
        """Register a neighbour for one address family."""
        if asn == self.asn:
            raise ValueError("an AS cannot neighbour itself")
        if not relationship.is_known:
            raise ValueError("neighbour relationship must be known")
        self._neighbors[afi][asn] = Neighbor(asn=asn, relationship=relationship)
        self._adj_rib_in.setdefault(asn, AdjRibIn(asn))
        self._sorted_neighbors[afi] = None

    def neighbors(self, afi: AFI) -> List[Neighbor]:
        """All neighbours for one address family (sorted by ASN)."""
        return list(self.sorted_neighbors(afi))

    def sorted_neighbors(self, afi: AFI) -> Tuple[Neighbor, ...]:
        """Cached, ASN-sorted neighbour tuple for one address family."""
        cached = self._sorted_neighbors[afi]
        if cached is None:
            cached = tuple(
                sorted(self._neighbors[afi].values(), key=lambda n: n.asn)
            )
            self._sorted_neighbors[afi] = cached
        return cached

    def relationship_to(self, asn: int, afi: AFI) -> Optional[Relationship]:
        """Relationship towards a neighbour (``None`` if not adjacent in ``afi``)."""
        neighbor = self._neighbors[afi].get(asn)
        return neighbor.relationship if neighbor else None

    # ------------------------------------------------------------------
    # origination and import
    # ------------------------------------------------------------------
    def originate(self, prefix: Prefix) -> Route:
        """Originate a prefix locally and install it as best."""
        route = Route.originate(prefix, self.asn)
        self._local_routes[prefix] = route
        self.loc_rib.install(route)
        return route

    def receive(self, announcement: Announcement) -> bool:
        """Import an announcement from a neighbour.

        Returns True when the best route for the prefix changed (and the
        new best therefore needs to be re-exported).
        """
        sender = announcement.sender
        prefix = announcement.prefix
        relationship = self.relationship_to(sender, prefix.afi)
        if relationship is None:
            raise ValueError(
                f"AS{self.asn} received an announcement from non-neighbour AS{sender}"
            )
        return self.import_route(
            prefix, sender, relationship, announcement.attributes
        )

    def reset_import_cache(self) -> None:
        """Drop the cached per-relationship import defaults.

        The cache snapshots the policy's LOCAL_PREF scheme and community
        tagging; call this after mutating a policy of an already-used
        speaker (the propagation simulator does so at the start of every
        run).
        """
        self._import_defaults = None

    def _build_import_defaults(self):
        policy = self.policy
        # Policies that override the import hooks (custom local_pref_for
        # or import_communities) cannot be snapshotted into defaults —
        # they must be consulted per route, like the seed did.
        cls = type(policy)
        if (
            cls.local_pref_for is not RoutingPolicy.local_pref_for
            or cls.import_communities is not RoutingPolicy.import_communities
        ):
            self._import_defaults = _CONSULT_POLICY
            return _CONSULT_POLICY
        defaults = {
            relationship: (
                policy.local_pref.for_relationship(relationship),
                tuple(policy.import_communities(relationship, None)),
            )
            for relationship in (
                Relationship.P2C,
                Relationship.C2P,
                Relationship.P2P,
                Relationship.SIBLING,
            )
        }
        self._import_defaults = defaults
        return defaults

    def import_route(
        self,
        prefix: Prefix,
        sender: int,
        relationship: Relationship,
        attributes: PathAttributes,
    ) -> bool:
        """Import a route from ``sender`` (the announcement-free fast path).

        ``relationship`` is this AS's relationship towards ``sender``;
        the propagation hot loop derives it from its export plans instead
        of re-resolving the neighbour table per announcement.  Returns
        True when the best route for the prefix changed.
        """
        as_path = attributes.as_path
        # Standard loop prevention: reject paths that already contain us.
        if self.asn in as_path._hops:
            return False
        policy = self.policy
        defaults = self._import_defaults
        if defaults is None:
            defaults = self._build_import_defaults()
        if policy.te_overrides or defaults is _CONSULT_POLICY:
            local_pref, override = policy.local_pref_for(sender, relationship, prefix)
            added_communities: Tuple = tuple(
                policy.import_communities(relationship, override)
            )
        else:
            local_pref, added_communities = defaults[relationship]
        if added_communities:
            attributes = attributes.add_communities(added_communities)
        attributes = PathAttributes(
            as_path=as_path,
            local_pref=local_pref,
            med=attributes.med,
            origin=attributes.origin,
            next_hop=attributes.next_hop,
            communities=attributes.communities,
        )
        route = Route(
            prefix=prefix,
            holder=self.asn,
            attributes=attributes,
            learned_from=sender,
            learned_relationship=relationship,
        )
        self._adj_rib_in[sender]._routes[prefix] = route
        holders = self._routes_by_prefix.get(prefix)
        if holders is None:
            holders = self._routes_by_prefix[prefix] = {}
        holders[sender] = route
        # Incremental decision: a full candidate comparison is only
        # needed when this neighbour previously supplied the best route
        # (the replacement may be worse).  Otherwise the new route either
        # strictly beats the installed best or changes nothing, and both
        # verdicts come from _preference_key — the single definition of
        # the decision ordering.
        loc_routes = self.loc_rib._routes
        best = loc_routes.get(prefix)
        if best is None:
            loc_routes[prefix] = route
            return True
        best_sender = best.learned_from
        if best_sender is None:  # locally originated always wins
            return False
        if best_sender == sender:
            return self._run_decision(prefix)
        if self._preference_key(route) > self._preference_key(best):
            loc_routes[prefix] = route
            return True
        return False

    def withdraw(self, prefix: Prefix, sender: int) -> bool:
        """Process a withdrawal from a neighbour; returns True if best changed."""
        rib = self._adj_rib_in.get(sender)
        if rib is None or rib.withdraw(prefix) is None:
            return False
        holders = self._routes_by_prefix.get(prefix)
        if holders is not None:
            holders.pop(sender, None)
            if not holders:
                del self._routes_by_prefix[prefix]
        # Removing a route that was not the installed best changes nothing.
        best = self.loc_rib.best(prefix)
        if best is not None and best.learned_from != sender:
            return False
        return self._run_decision(prefix)

    # ------------------------------------------------------------------
    # decision process
    # ------------------------------------------------------------------
    @staticmethod
    def _preference_key(route: Route) -> Tuple[int, int, int, int]:
        """Sort key: higher is better.

        Locally originated routes always win; otherwise higher
        LOCAL_PREF, then shorter AS path, then lower neighbour ASN.
        The key is memoized on the (immutable) route, so the decision
        ordering stays defined in exactly one place without paying a
        tuple construction per comparison.
        """
        key = route._pref_key
        if key is None:
            if route.learned_from is None:  # locally originated
                key = (1, 0, 0, 0)
            else:
                local_pref = route.attributes.local_pref
                if local_pref is None:
                    local_pref = 100
                # Negative values convert "smaller is better" into
                # "larger is better".
                key = (
                    0,
                    local_pref,
                    -len(route.attributes.as_path._hops),
                    -route.learned_from,
                )
            object.__setattr__(route, "_pref_key", key)
        return key

    def _candidates(self, prefix: Prefix) -> List[Route]:
        candidates: List[Route] = []
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        holders = self._routes_by_prefix.get(prefix)
        if holders:
            candidates.extend(holders.values())
        return candidates

    def _run_decision(self, prefix: Prefix) -> bool:
        candidates = self._candidates(prefix)
        if not candidates:
            return self.loc_rib.remove(prefix) is not None
        best = max(candidates, key=self._preference_key)
        return self.loc_rib.install(best)

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        """The current best route for a prefix (``None`` if unreachable)."""
        return self.loc_rib.best(prefix)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_to(self, neighbor_asn: int, prefix: Prefix) -> Optional[Announcement]:
        """Build the announcement of the best route towards one neighbour.

        Returns ``None`` when the route must not be exported (export
        policy) or when there is no best route for the prefix.
        """
        best = self.loc_rib.best(prefix)
        if best is None:
            return None
        afi = prefix.afi
        neighbor = self._neighbors[afi].get(neighbor_asn)
        if neighbor is None:
            return None
        # Never send a route back to the neighbour it was learned from.
        if best.learned_from == neighbor_asn:
            return None
        if not self.policy.export_allowed(
            best.learned_relationship, neighbor.relationship, neighbor_asn, afi
        ):
            return None
        return Announcement(
            prefix=prefix,
            sender=self.asn,
            receiver=neighbor_asn,
            attributes=self.exported_attributes(best),
        )

    def exported_attributes(self, best: Route) -> PathAttributes:
        """The attributes ``best`` is exported with (receiver-independent).

        The exported attribute set does not depend on which neighbour the
        announcement goes to, so the propagation hot loop computes it
        once per best-route change and fans it out.
        """
        # Locally originated routes already carry the origin AS as their
        # only hop; prepending again would duplicate it.
        exported_path = best.as_path if best.is_local else best.as_path.prepend(self.asn)
        communities = () if self.policy.strip_communities_on_export else best.communities
        return PathAttributes(
            as_path=exported_path,
            local_pref=None,  # LOCAL_PREF is not propagated across EBGP sessions.
            med=0,
            origin=best.attributes.origin,
            next_hop="",
            communities=communities,
        )

    def exportable_neighbors(self, prefix: Prefix) -> List[int]:
        """Neighbours to which the current best route may be exported."""
        best = self.loc_rib.best(prefix)
        if best is None:
            return []
        afi = prefix.afi
        result = []
        for neighbor in self.sorted_neighbors(afi):
            if neighbor.asn == best.learned_from:
                continue
            if self.policy.export_allowed(
                best.learned_relationship, neighbor.relationship, neighbor.asn, afi
            ):
                result.append(neighbor.asn)
        return result

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def prune_prefix(self, prefix: Prefix, keep_best: bool = True) -> None:
        """Drop per-prefix state that is no longer needed after convergence.

        The Adj-RIB-In entries for ``prefix`` are always removed (they are
        only needed while the prefix is still propagating); the Loc-RIB
        entry is removed too unless ``keep_best`` is True.  The
        network-wide simulator uses this to keep memory proportional to
        the number of vantage points rather than to ASes x prefixes.
        """
        holders = self._routes_by_prefix.pop(prefix, None)
        if holders:
            for sender in holders:
                self._adj_rib_in[sender].withdraw(prefix)
        if not keep_best:
            self.loc_rib.remove(prefix)
            self._local_routes.pop(prefix, None)

    # ------------------------------------------------------------------
    # merging (parallel propagation)
    # ------------------------------------------------------------------
    def absorb(self, other: "BGPSpeaker") -> None:
        """Merge per-prefix state from a speaker of the same AS.

        Used by :class:`~repro.bgp.engine.PropagationEngine` to combine
        the results of workers that propagated **disjoint** prefix sets;
        per-prefix state never collides, so merging is a plain union.
        """
        if other.asn != self.asn:
            raise ValueError(
                f"cannot absorb AS{other.asn} state into AS{self.asn}"
            )
        self._local_routes.update(other._local_routes)
        for route in other.loc_rib:
            self.loc_rib.install(route)
        for sender, rib in other._adj_rib_in.items():
            mine = self._adj_rib_in.get(sender)
            if mine is None:
                mine = self._adj_rib_in[sender] = AdjRibIn(sender)
            for route in rib:
                mine.update(route)
        for prefix, holders in other._routes_by_prefix.items():
            self._routes_by_prefix.setdefault(prefix, {}).update(holders)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> RibSnapshot:
        """A frozen copy of the Loc-RIB, for the collectors."""
        return RibSnapshot(
            asn=self.asn, best_routes={route.prefix: route for route in self.loc_rib}
        )
