"""Routing policies: LOCAL_PREF assignment, community tagging and export rules.

The propagation simulator applies, for every AS, a :class:`RoutingPolicy`
that captures the three policy ingredients the paper's methodology
depends on:

1. **LOCAL_PREF assignment** — the conventional ordering
   ``customer > peer > provider`` (Section 2 of the paper), with per-AS
   numeric schemes and optional traffic-engineering overrides that break
   the ordering for selected prefixes.  The overrides are what the
   paper's "Rosetta Stone" validation has to filter out.

2. **Community tagging** — on import, an AS tags the route with the
   community that encodes the relationship it has with the neighbour the
   route was learned from, plus any traffic-engineering communities
   associated with an override.  The tagging scheme itself lives in
   :mod:`repro.irr`; the policy only needs an object implementing the
   small :class:`CommunityTagger` protocol.

3. **Export filtering** — the Gao–Rexford rules (routes learned from
   peers or providers are only exported to customers), optionally
   *relaxed* for the IPv6 plane on selected adjacencies.  Relaxations are
   what produces the paper's valley paths, some of which are necessary
   for IPv6 reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol, Set, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix


class CommunityTagger(Protocol):
    """The slice of a community dictionary the routing policy needs."""

    def relationship_communities(self, relationship: Relationship) -> List[Community]:
        """Communities this AS attaches to routes learned over ``relationship``."""
        ...  # pragma: no cover - protocol definition

    def traffic_engineering_communities(self, action: str) -> List[Community]:
        """Communities this AS attaches for a traffic-engineering ``action``."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class LocalPrefScheme:
    """Numeric LOCAL_PREF values an AS uses per relationship type.

    The defaults follow the conventional ordering; the synthetic dataset
    builder varies the absolute numbers per AS (e.g. 900/800/700 vs
    300/200/100) so that the inference cannot simply hard-code values and
    must learn each AS's scheme, exactly as the paper does.
    """

    customer: int = 300
    peer: int = 200
    provider: int = 100
    sibling: int = 250

    def __post_init__(self) -> None:
        if not self.customer > self.peer > self.provider:
            raise ValueError(
                "LOCAL_PREF scheme must satisfy customer > peer > provider"
            )

    def for_relationship(self, relationship: Relationship) -> int:
        """LOCAL_PREF assigned to a route learned over ``relationship``.

        ``relationship`` is expressed from the importing AS's point of
        view: ``P2C`` means the route was learned from a customer.
        """
        if relationship is Relationship.P2C:
            return self.customer
        if relationship is Relationship.P2P:
            return self.peer
        if relationship is Relationship.C2P:
            return self.provider
        if relationship is Relationship.SIBLING:
            return self.sibling
        raise ValueError(f"no LOCAL_PREF defined for relationship {relationship}")

    def relationship_for(self, local_pref: int) -> Relationship:
        """Reverse lookup used by tests and the LocPrf inference oracle."""
        mapping = {
            self.customer: Relationship.P2C,
            self.peer: Relationship.P2P,
            self.provider: Relationship.C2P,
            self.sibling: Relationship.SIBLING,
        }
        return mapping.get(local_pref, Relationship.UNKNOWN)


@dataclass(frozen=True)
class TrafficEngineeringOverride:
    """A non-standard LOCAL_PREF applied to routes from one neighbour.

    Operators routinely de-prefer a congested upstream or prefer a backup
    path for selected prefixes.  Such overrides decouple LOCAL_PREF from
    the relationship and must be detected (through the accompanying
    traffic-engineering communities) and filtered by the inference.

    Attributes:
        neighbor: The neighbour whose routes are affected.
        local_pref: The LOCAL_PREF to apply instead of the scheme value.
        action: Symbolic traffic-engineering action name; the community
            tagger translates it into that AS's TE communities.
        prefixes: Restrict the override to specific prefixes (empty means
            all routes from the neighbour).
    """

    neighbor: int
    local_pref: int
    action: str = "lower-pref"
    prefixes: Tuple[Prefix, ...] = ()

    def applies_to(self, neighbor: int, prefix: Prefix) -> bool:
        """True when the override matches a (neighbour, prefix) pair."""
        if neighbor != self.neighbor:
            return False
        return not self.prefixes or prefix in self.prefixes


def gao_rexford_export_allowed(
    learned_relationship: Optional[Relationship],
    export_relationship: Relationship,
) -> bool:
    """The valley-free export rule.

    ``learned_relationship`` is the importing AS's relationship towards
    the neighbour the route was learned from (``None`` for locally
    originated routes); ``export_relationship`` is its relationship
    towards the neighbour it is about to export to.

    * Locally originated routes and routes learned from customers (and
      siblings) are exported to everyone.
    * Routes learned from peers or providers are exported only to
      customers (and siblings).
    """
    if learned_relationship is None:
        return True
    if learned_relationship in (Relationship.P2C, Relationship.SIBLING):
        return True
    return export_relationship in (Relationship.P2C, Relationship.SIBLING)


@dataclass
class RoutingPolicy:
    """The complete routing policy of one AS.

    Attributes:
        asn: The AS this policy belongs to.
        local_pref: The AS's LOCAL_PREF scheme.
        tagger: Community tagging scheme (``None`` disables tagging,
            modelling the many ASes that do not document or use
            relationship communities — the reason the paper only recovers
            72 % of the links).
        te_overrides: Traffic-engineering LOCAL_PREF overrides.
        relaxed_export_neighbors: Per-AFI sets of neighbours towards
            which the Gao–Rexford export restriction is lifted.  Used to
            model the IPv6 policy relaxations (free transit over peering
            links, reachability-motivated leaks).
        strip_communities_on_export: When True the AS removes all
            communities before exporting a route, modelling operators
            that do not propagate informational communities.  This (along
            with ASes that have no tagger at all) is why relationship
            coverage stays below 100 %, as in the paper.
    """

    asn: int
    local_pref: LocalPrefScheme = field(default_factory=LocalPrefScheme)
    tagger: Optional[CommunityTagger] = None
    te_overrides: List[TrafficEngineeringOverride] = field(default_factory=list)
    relaxed_export_neighbors: Dict[AFI, Set[int]] = field(
        default_factory=lambda: {AFI.IPV4: set(), AFI.IPV6: set()}
    )
    strip_communities_on_export: bool = False

    # ------------------------------------------------------------------
    # import side
    # ------------------------------------------------------------------
    def local_pref_for(
        self, neighbor: int, relationship: Relationship, prefix: Prefix
    ) -> Tuple[int, Optional[TrafficEngineeringOverride]]:
        """LOCAL_PREF for a route from ``neighbor``, plus the override applied.

        Returns the scheme value when no traffic-engineering override
        matches; otherwise the override value and the override itself so
        the caller can attach the corresponding TE communities.
        """
        for override in self.te_overrides:
            if override.applies_to(neighbor, prefix):
                return override.local_pref, override
        return self.local_pref.for_relationship(relationship), None

    def import_communities(
        self,
        relationship: Relationship,
        override: Optional[TrafficEngineeringOverride],
    ) -> List[Community]:
        """Communities this AS attaches when importing a route."""
        if self.tagger is None:
            return []
        communities = list(self.tagger.relationship_communities(relationship))
        if override is not None:
            communities.extend(
                self.tagger.traffic_engineering_communities(override.action)
            )
        return communities

    # ------------------------------------------------------------------
    # export side
    # ------------------------------------------------------------------
    def add_relaxation(self, neighbor: int, afi: AFI = AFI.IPV6) -> None:
        """Lift the export restriction towards ``neighbor`` for ``afi``."""
        self.relaxed_export_neighbors.setdefault(afi, set()).add(neighbor)

    def is_relaxed(self, neighbor: int, afi: AFI) -> bool:
        """True if exports to ``neighbor`` in ``afi`` bypass valley-free rules."""
        return neighbor in self.relaxed_export_neighbors.get(afi, set())

    def export_allowed(
        self,
        learned_relationship: Optional[Relationship],
        export_relationship: Relationship,
        neighbor: int,
        afi: AFI,
    ) -> bool:
        """Decide whether a route may be exported to ``neighbor``.

        Applies the Gao–Rexford rule unless the adjacency is relaxed for
        the route's address family.
        """
        if self.is_relaxed(neighbor, afi):
            return True
        return gao_rexford_export_allowed(learned_relationship, export_relationship)


def default_policies(asns: Iterable[int]) -> Dict[int, RoutingPolicy]:
    """Build plain (untagged, unrelaxed) policies for a set of ASes."""
    return {asn: RoutingPolicy(asn=asn) for asn in asns}
