"""Frozen seed implementation of the BGP propagation stack.

This module preserves, verbatim in behaviour, the pre-optimization
("seed") speaker and simulator:

* :class:`ReferenceBGPSpeaker` scans every Adj-RIB-In during the
  decision process and re-sorts its neighbour tables on every export
  evaluation, exactly like the seed ``BGPSpeaker`` did.
* :class:`ReferencePropagationSimulator` re-evaluates the export policy
  per event, recounts reachability with an O(ASes) post-scan per prefix
  and prunes every speaker, exactly like the seed
  ``PropagationSimulator`` did.

It exists for two reasons:

1. **Golden equivalence** — the optimized fast path in
   :mod:`repro.bgp.propagation` must produce identical routes; the
   golden test suite runs both implementations over the same topologies
   and asserts route-for-route equality.
2. **Performance tracking** — ``benchmarks/run_benchmarks.py`` measures
   the optimized/reference speedup and records it in
   ``BENCH_propagation.json``.

Do not optimize this module; it is the baseline.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.propagation import ConvergenceError, PropagationResult
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot
from repro.bgp.router import Neighbor
from repro.topology.graph import ASGraph


class ReferenceBGPSpeaker:
    """The seed BGP speaker: correct, clear, and deliberately unindexed."""

    def __init__(self, asn: int, policy: Optional[RoutingPolicy] = None) -> None:
        self.asn = asn
        self.policy = policy or RoutingPolicy(asn=asn)
        self._neighbors: Dict[AFI, Dict[int, Neighbor]] = {AFI.IPV4: {}, AFI.IPV6: {}}
        self._adj_rib_in: Dict[int, AdjRibIn] = {}
        self.loc_rib = LocRib()
        self._local_routes: Dict[Prefix, Route] = {}

    # -- session management -------------------------------------------
    def add_neighbor(self, asn: int, relationship: Relationship, afi: AFI) -> None:
        if asn == self.asn:
            raise ValueError("an AS cannot neighbour itself")
        if not relationship.is_known:
            raise ValueError("neighbour relationship must be known")
        self._neighbors[afi][asn] = Neighbor(asn=asn, relationship=relationship)
        self._adj_rib_in.setdefault(asn, AdjRibIn(asn))

    def neighbors(self, afi: AFI) -> List[Neighbor]:
        return sorted(self._neighbors[afi].values(), key=lambda n: n.asn)

    def relationship_to(self, asn: int, afi: AFI) -> Optional[Relationship]:
        neighbor = self._neighbors[afi].get(asn)
        return neighbor.relationship if neighbor else None

    # -- origination and import ---------------------------------------
    def originate(self, prefix: Prefix) -> Route:
        route = Route.originate(prefix, self.asn)
        self._local_routes[prefix] = route
        self.loc_rib.install(route)
        return route

    def receive(self, announcement: Announcement) -> bool:
        sender = announcement.sender
        relationship = self.relationship_to(sender, announcement.afi)
        if relationship is None:
            raise ValueError(
                f"AS{self.asn} received an announcement from non-neighbour AS{sender}"
            )
        if announcement.as_path.contains(self.asn):
            return False
        local_pref, override = self.policy.local_pref_for(
            sender, relationship, announcement.prefix
        )
        added_communities = self.policy.import_communities(relationship, override)
        attributes = announcement.attributes.add_communities(added_communities)
        attributes = PathAttributes(
            as_path=attributes.as_path,
            local_pref=local_pref,
            med=attributes.med,
            origin=attributes.origin,
            next_hop=attributes.next_hop,
            communities=attributes.communities,
        )
        route = Route(
            prefix=announcement.prefix,
            holder=self.asn,
            attributes=attributes,
            learned_from=sender,
            learned_relationship=relationship,
        )
        self._adj_rib_in[sender].update(route)
        return self._run_decision(announcement.prefix)

    def withdraw(self, prefix: Prefix, sender: int) -> bool:
        rib = self._adj_rib_in.get(sender)
        if rib is None or rib.withdraw(prefix) is None:
            return False
        return self._run_decision(prefix)

    # -- decision process ---------------------------------------------
    @staticmethod
    def _preference_key(route: Route) -> Tuple[int, int, int, int]:
        if route.is_local:
            return (1, 0, 0, 0)
        local_pref = route.local_pref if route.local_pref is not None else 100
        return (0, local_pref, -len(route.as_path.hops), -route.learned_from)

    def _candidates(self, prefix: Prefix) -> List[Route]:
        candidates: List[Route] = []
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        for rib in self._adj_rib_in.values():
            route = rib.route_for(prefix)
            if route is not None:
                candidates.append(route)
        return candidates

    def _run_decision(self, prefix: Prefix) -> bool:
        candidates = self._candidates(prefix)
        if not candidates:
            return self.loc_rib.remove(prefix) is not None
        best = max(candidates, key=self._preference_key)
        return self.loc_rib.install(best)

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        return self.loc_rib.best(prefix)

    # -- export --------------------------------------------------------
    def export_to(self, neighbor_asn: int, prefix: Prefix) -> Optional[Announcement]:
        best = self.loc_rib.best(prefix)
        if best is None:
            return None
        afi = prefix.afi
        neighbor = self._neighbors[afi].get(neighbor_asn)
        if neighbor is None:
            return None
        if best.learned_from == neighbor_asn:
            return None
        if not self.policy.export_allowed(
            best.learned_relationship, neighbor.relationship, neighbor_asn, afi
        ):
            return None
        exported_path = best.as_path if best.is_local else best.as_path.prepend(self.asn)
        communities = () if self.policy.strip_communities_on_export else best.communities
        attributes = PathAttributes(
            as_path=exported_path,
            local_pref=None,
            med=0,
            origin=best.attributes.origin,
            next_hop="",
            communities=communities,
        )
        return Announcement(
            prefix=prefix, sender=self.asn, receiver=neighbor_asn, attributes=attributes
        )

    def exportable_neighbors(self, prefix: Prefix) -> List[int]:
        best = self.loc_rib.best(prefix)
        if best is None:
            return []
        afi = prefix.afi
        result = []
        for neighbor in self.neighbors(afi):
            if neighbor.asn == best.learned_from:
                continue
            if self.policy.export_allowed(
                best.learned_relationship, neighbor.relationship, neighbor.asn, afi
            ):
                result.append(neighbor.asn)
        return result

    # -- memory management --------------------------------------------
    def prune_prefix(self, prefix: Prefix, keep_best: bool = True) -> None:
        for rib in self._adj_rib_in.values():
            rib.withdraw(prefix)
        if not keep_best:
            self.loc_rib.remove(prefix)
            self._local_routes.pop(prefix, None)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> RibSnapshot:
        return RibSnapshot(
            asn=self.asn, best_routes={route.prefix: route for route in self.loc_rib}
        )


class ReferencePropagationSimulator:
    """The seed propagation loop: per-event policy checks and post-scans."""

    def __init__(
        self,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]] = None,
        max_events_per_prefix: int = 200_000,
        keep_ribs_for: Optional[Iterable[int]] = None,
    ) -> None:
        self.graph = graph
        self.max_events_per_prefix = max_events_per_prefix
        self.keep_ribs_for = set(keep_ribs_for) if keep_ribs_for is not None else None
        self.speakers: Dict[int, ReferenceBGPSpeaker] = {}
        policies = policies or {}
        for asn in graph.ases:
            policy = policies.get(asn)
            self.speakers[asn] = ReferenceBGPSpeaker(asn, policy)
        self._build_sessions()

    def _build_sessions(self) -> None:
        for afi in (AFI.IPV4, AFI.IPV6):
            for link in self.graph.links(afi):
                rel_ab = self.graph.relationship(link.a, link.b, afi)
                rel_ba = self.graph.relationship(link.b, link.a, afi)
                self.speakers[link.a].add_neighbor(link.b, rel_ab, afi)
                self.speakers[link.b].add_neighbor(link.a, rel_ba, afi)

    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        total_events = 0
        reachable_counts: Dict[Prefix, int] = {}
        for prefix, origin_asn in origins.items():
            if origin_asn not in self.speakers:
                raise KeyError(f"origin AS{origin_asn} is not in the topology")
            if not self.graph.node(origin_asn).supports(prefix.afi):
                raise ValueError(
                    f"AS{origin_asn} does not participate in {prefix.afi} "
                    f"but originates {prefix}"
                )
            total_events += self._propagate_prefix(prefix, origin_asn)
            reachable_counts[prefix] = sum(
                1
                for speaker in self.speakers.values()
                if speaker.best_route(prefix) is not None
            )
            if self.keep_ribs_for is not None:
                for asn, speaker in self.speakers.items():
                    speaker.prune_prefix(prefix, keep_best=asn in self.keep_ribs_for)
        return PropagationResult(
            speakers=self.speakers,  # type: ignore[arg-type]
            origins=dict(origins),
            events=total_events,
            reachable_counts=reachable_counts,
        )

    def _propagate_prefix(self, prefix: Prefix, origin_asn: int) -> int:
        origin = self.speakers[origin_asn]
        origin.originate(prefix)
        announced_to: Dict[int, Set[int]] = {asn: set() for asn in self.speakers}
        queue = deque([origin_asn])
        queued: Set[int] = {origin_asn}
        events = 0
        while queue:
            events += 1
            if events > self.max_events_per_prefix:
                raise ConvergenceError(
                    f"prefix {prefix} did not converge within "
                    f"{self.max_events_per_prefix} events"
                )
            asn = queue.popleft()
            queued.discard(asn)
            speaker = self.speakers[asn]
            exportable = set(speaker.exportable_neighbors(prefix))
            for neighbor_asn in sorted(announced_to[asn] - exportable):
                announced_to[asn].discard(neighbor_asn)
                changed = self.speakers[neighbor_asn].withdraw(prefix, asn)
                if changed and neighbor_asn not in queued:
                    queue.append(neighbor_asn)
                    queued.add(neighbor_asn)
            for neighbor_asn in sorted(exportable):
                announcement = speaker.export_to(neighbor_asn, prefix)
                if announcement is None:
                    continue
                announced_to[asn].add(neighbor_asn)
                changed = self.speakers[neighbor_asn].receive(announcement)
                if changed and neighbor_asn not in queued:
                    queue.append(neighbor_asn)
                    queued.add(neighbor_asn)
        return events
