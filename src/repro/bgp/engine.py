"""Batched propagation: run many independent prefixes, optionally in parallel.

Every prefix propagates independently in this simulator — all speaker
state (Adj-RIB-In entries, Loc-RIB entries, locally originated routes)
is keyed by prefix and the decision process only ever compares routes
for the same prefix.  :class:`PropagationEngine` exploits that: it
splits an origin set into contiguous batches, propagates each batch on
its own backend instance (optionally on a :mod:`concurrent.futures`
executor) and merges the per-prefix state back into one combined
:class:`~repro.bgp.propagation.PropagationResult`.

The engine is also where the pluggable backends of
:mod:`repro.bgp.backends` become a configuration choice: ``engine``
selects ``event`` (the default simulator), ``array`` (interned event
loop), ``equilibrium`` (direct Gao-Rexford fixed point) or ``auto``
(equilibrium when the policies qualify, event otherwise).  Selection
happens once per :meth:`PropagationEngine.run_many` call on the full
origin set and is pinned for every batch, so parallel runs can never
mix backends.

**Control-plane compression** (``compression="stubs"|"full"``) is the
second, backend-transparent axis: the engine builds a
:class:`~repro.topology.compress.CompressionPlan` once per distinct
origin set (origins and kept/vantage ASes pinned as singletons), runs
the selected backend on the quotient graph, and inflates the result
back to the full graph through
:func:`~repro.topology.compress.inflate_result` — Loc-RIBs are
bit-identical to an uncompressed run.  Solver backends carry the
converged best-sender forest across (``record_resolution``) so the
compressed run materializes no routes at all; the event backend keeps
full compressed RIBs instead.  Like the backend, the plan is resolved
once per :meth:`run_many` call and pinned for every batch.

Because the batches are disjoint and each batch runs the same
deterministic event loop a serial run would, the merged result is
**bit-identical** to a serial :meth:`PropagationEngine.run` regardless
of the worker count — the determinism test in the golden suite pins
this.  The default (``workers=None`` or ``workers<=1``) does not touch
an executor at all and is exactly today's serial simulator.

Executor choice:

* ``"thread"`` (default) — no pickling, shares the graph; CPython's GIL
  limits the speedup for this pure-Python workload, but the API and the
  batching are in place for free-threaded builds and for workloads that
  release the GIL.
* ``"process"`` — full process parallelism.  On fork platforms (Linux,
  the default everywhere the benchmarks run) the engine — graph and
  policies included — is **shared with the workers through a
  fork-inherited module global**: the parent registers itself in
  :data:`_SHARED_ENGINES` before the pool forks, the children inherit
  the registry through copy-on-write memory, and each task ships only a
  small ``(key, batch)`` pair.  On spawn/forkserver platforms (macOS
  and Windows defaults), where nothing is inherited, the engine is
  pickled **once per worker** through the pool initializer instead of
  once per batch — still far cheaper than the original
  per-task pickling for large topologies.  Batch results cross the
  boundary by pickle in both modes.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.bgp.backends import BACKENDS, ENGINE_CHOICES, EquilibriumBackend
from repro.telemetry import Tracer, activated, get_tracer
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.propagation import PropagationResult, PropagationSimulator
from repro.topology.graph import ASGraph

_EXECUTORS = ("thread", "process")

#: Engines visible to process-pool workers.  On fork platforms the
#: parent's entry is inherited by the children (copy-on-write, no
#: pickling); on spawn platforms :func:`_register_shared_engine` fills
#: it once per worker via the pool initializer.
_SHARED_ENGINES: Dict[int, "PropagationEngine"] = {}

#: Process-unique registration keys (``id()`` could be reused after GC).
_shared_engine_keys = itertools.count()


def _register_shared_engine(key: int, engine: "PropagationEngine") -> None:
    """Pool initializer for spawn platforms: install the engine once."""
    _SHARED_ENGINES[key] = engine


def _run_shared_batch(
    key: int, batch: List[Tuple[Prefix, int]]
) -> PropagationResult:
    """Worker entry point: propagate one batch on the shared engine."""
    return _SHARED_ENGINES[key]._run_batch(batch)


def _start_method() -> str:
    """The multiprocessing start method (isolated for tests)."""
    return multiprocessing.get_start_method(allow_none=False)


class PropagationEngine:
    """Propagate origin sets over one topology, serially or batched."""

    def __init__(
        self,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]] = None,
        max_events_per_prefix: int = 200_000,
        keep_ribs_for: Optional[Iterable[int]] = None,
        engine: str = "event",
        compression: str = "off",
        compression_plan=None,
    ) -> None:
        """``engine`` picks the propagation backend (see
        :mod:`repro.bgp.backends`): ``event`` (default), ``array``,
        ``equilibrium`` or ``auto``.  ``equilibrium`` and ``auto`` fall
        back to the event backend when the policies are not vanilla
        Gao-Rexford (:meth:`select_backend` exposes the decision and the
        reason).

        ``compression`` (``off``/``stubs``/``full``) collapses
        policy-equivalent ASes into quotient nodes before propagation
        and inflates results back — transparent to the backend choice
        (see :mod:`repro.topology.compress`).  A prebuilt
        ``compression_plan`` (e.g. the pipeline's cached ``compress``
        stage artifact) may be injected; it is validated against each
        run's origins and vantage ASes, and plans that could not
        collapse anything fall back to an uncompressed run with the
        plan's explicit reason.
        """
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"engine must be one of {ENGINE_CHOICES}, got {engine!r}"
            )
        from repro.topology.compress import COMPRESSION_CHOICES

        if compression not in COMPRESSION_CHOICES:
            raise ValueError(
                f"compression must be one of {COMPRESSION_CHOICES}, "
                f"got {compression!r}"
            )
        self.graph = graph
        self.policies = dict(policies) if policies is not None else None
        self.max_events_per_prefix = max_events_per_prefix
        self.keep_ribs_for = (
            sorted(keep_ribs_for) if keep_ribs_for is not None else None
        )
        self.engine = engine
        self.compression = compression
        self._injected_plan = compression_plan
        # Plans are pure functions of (mode, origin set, pinned set);
        # the pinned set is fixed per engine instance, so cache by the
        # sorted origin ASNs.
        self._plan_cache: Dict[Tuple[int, ...], object] = {}
        # Concrete backend pinned by run_many() so that every batch —
        # including ones executed in forked/spawned worker processes —
        # uses the backend resolved once on the *full* origin set.  The
        # compression plan is pinned alongside it for the same reason
        # (a per-batch origin subset would pin different singletons).
        self._forced_backend: Optional[str] = None
        self._forced_plan = None
        # Trace context pinned by run_many() so batches executed in
        # pool threads/processes join the caller's span tree (the
        # TelemetryConfig is picklable and travels with the engine).
        self._forced_trace = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_simulator(self) -> PropagationSimulator:
        return PropagationSimulator(
            self.graph,
            self.policies,
            max_events_per_prefix=self.max_events_per_prefix,
            keep_ribs_for=self.keep_ribs_for,
        )

    def _resolve_backend(
        self, origins: Mapping[Prefix, int]
    ) -> Tuple[str, Optional[str]]:
        """The engine-axis half of :meth:`select_backend`."""
        if self.engine in ("event", "array"):
            return self.engine, None
        for afi in sorted({prefix.afi for prefix in origins}, key=lambda a: a.value):
            reason = EquilibriumBackend.inapplicable_reason(
                self.graph, self.policies, afi
            )
            if reason is not None:
                return "event", reason
        return "equilibrium", None

    def _compression_plan_for(
        self, origins: Mapping[Prefix, int], backend: Optional[str] = None
    ):
        """The compression plan serving ``origins`` (``None`` when off).

        An injected plan is validated against the run's origins and
        vantage ASes; otherwise one is built (and cached) per distinct
        origin set, with origins and kept ASes pinned as singletons.
        """
        if self.compression == "off":
            return None
        origin_asns = set(origins.values())
        if self._injected_plan is not None:
            self._injected_plan.validate_for(origin_asns, self.keep_ribs_for)
            return self._injected_plan
        from repro.topology.compress import compress_topology

        key = tuple(sorted(origin_asns))
        plan = self._plan_cache.get(key)
        if plan is None:
            attrs = {"mode": self.compression}
            if backend is not None:
                attrs["backend"] = backend
            with get_tracer().span("propagation.compress", **attrs) as span:
                plan = compress_topology(
                    self.graph,
                    self.policies,
                    mode=self.compression,
                    pinned=self.keep_ribs_for or (),
                    origin_asns=origin_asns,
                )
                span.annotate(applied=plan.applied)
            self._plan_cache[key] = plan
        return plan

    def select_backend(
        self, origins: Mapping[Prefix, int]
    ) -> Tuple[str, Optional[str]]:
        """Resolve the configured engine to ``(backend name, reason)``.

        ``event`` and ``array`` are unconditional.  ``equilibrium`` and
        ``auto`` resolve to the equilibrium solver only when it is
        applicable to every address family present in ``origins``;
        otherwise they resolve to ``event`` and the reason carries the
        (first) cause of the fallback.  With compression enabled the
        reason additionally carries the compression decision (what was
        collapsed, or why nothing was), so ``auto`` provenance reports
        the full selection story; with ``compression="off"`` the reason
        is exactly the historical solver-applicability string (``None``
        when nothing fell back).
        """
        name, reason = self._resolve_backend(origins)
        if self.compression != "off":
            described = self._compression_plan_for(origins).describe()
            reason = described if reason is None else f"{reason}; {described}"
        return name, reason

    def selection_report(self, origins: Mapping[Prefix, int]) -> Dict[str, object]:
        """Structured backend + compression provenance for one origin set.

        The machine-readable counterpart of :meth:`select_backend`,
        surfaced by ``section3 --json`` so consumers can see which
        backend actually ran and what compression did without parsing
        reason strings.
        """
        name, fallback = self._resolve_backend(origins)
        report: Dict[str, object] = {
            "engine": self.engine,
            "backend": name,
            "fallback_reason": fallback,
        }
        plan = self._compression_plan_for(origins)
        if plan is None:
            report["compression"] = {"mode": self.compression, "applied": False}
        else:
            entry: Dict[str, object] = {
                "mode": plan.mode,
                "applied": plan.applied,
                "description": plan.describe(),
            }
            if plan.applied:
                entry["stats"] = plan.stats.as_dict()
            else:
                entry["reason"] = plan.reason
            report["compression"] = entry
        return report

    def _new_backend(self, name: str):
        return BACKENDS[name](
            self.graph,
            self.policies,
            max_events_per_prefix=self.max_events_per_prefix,
            keep_ribs_for=self.keep_ribs_for,
        )

    def _run_on(
        self, name: str, plan, origins: Mapping[Prefix, int]
    ) -> PropagationResult:
        """Run ``origins`` on backend ``name``, through ``plan`` if any.

        With an applied plan the backend propagates over the quotient
        graph and the result is inflated back to the full graph.  A
        solver backend carries the best-sender forest across
        (``record_resolution=True``, zero kept RIBs — no route is ever
        materialized for the compressed graph); the event backend keeps
        its full compressed RIBs as the inflation oracle instead.
        """
        tracer = get_tracer()
        applied = plan is not None and plan.applied
        with tracer.span(
            "propagation",
            backend=name,
            engine=self.engine,
            compression=self.compression,
            compression_applied=applied,
            prefixes=len(origins),
        ) as span:
            if not applied:
                with tracer.span("propagation.propagate", backend=name):
                    result = self._new_backend(name).run(origins)
                span.annotate(events=result.events)
                return result
            from repro.topology.compress import inflate_result

            backend_cls = BACKENDS[name]
            if backend_cls.supports_resolution:
                backend = backend_cls(
                    plan.graph,
                    self.policies,
                    max_events_per_prefix=self.max_events_per_prefix,
                    keep_ribs_for=(),
                    record_resolution=True,
                )
            else:
                backend = backend_cls(
                    plan.graph,
                    self.policies,
                    max_events_per_prefix=self.max_events_per_prefix,
                    keep_ribs_for=None,
                )
            with tracer.span("propagation.propagate", backend=name):
                compressed = backend.run(origins)
            with tracer.span("propagation.inflate", backend=name):
                result = inflate_result(
                    self.graph,
                    self.policies,
                    plan,
                    compressed,
                    keep_ribs_for=self.keep_ribs_for,
                )
            span.annotate(events=result.events)
            return result

    def _run_batch(self, batch: List[Tuple[Prefix, int]]) -> PropagationResult:
        """Propagate one batch of origins on a fresh backend instance.

        Inside run_many() the backend and compression plan were
        resolved once on the full origin set and pinned in
        ``_forced_backend``/``_forced_plan`` (the attributes travel to
        worker processes with the engine), so batches can never
        disagree on the backend or on the quotient graph.

        The pinned trace context (``_forced_trace``) travels the same
        way: a batch running in the caller's process parents its span
        under the ``run_many`` span directly, while a batch in a pool
        worker — fork-inherited or spawn-pickled — opens a fresh child
        tracer from the context and flushes it before returning, so a
        traced ``run_many`` yields one coherent tree either way.
        """
        context = getattr(self, "_forced_trace", None)
        if context is None:
            return self._run_batch_inner(batch)
        tracer = get_tracer()
        if tracer and tracer.pid == os.getpid():
            with tracer.span(
                "propagation.batch",
                parent_id=context.parent_span_id,
                backend=self._forced_backend or self.engine,
                prefixes=len(batch),
            ):
                return self._run_batch_inner(batch)
        # Pool worker process.  A fork-inherited ambient tracer is a
        # copy of the parent's (flushing it would duplicate the
        # parent's buffered records); always emit through a fresh
        # tracer joined to the pinned context instead.
        child = Tracer.from_config(context)
        try:
            with activated(child):
                with child.span(
                    "propagation.batch",
                    backend=self._forced_backend or self.engine,
                    prefixes=len(batch),
                ):
                    return self._run_batch_inner(batch)
        finally:
            child.flush()

    def _run_batch_inner(self, batch: List[Tuple[Prefix, int]]) -> PropagationResult:
        name = self._forced_backend
        if name is None:
            origins = dict(batch)
            name, _reason = self._resolve_backend(origins)
            return self._run_on(
                name, self._compression_plan_for(origins, backend=name), origins
            )
        return self._run_on(name, self._forced_plan, dict(batch))

    @staticmethod
    def _split(
        origins: Mapping[Prefix, int], batches: int
    ) -> List[List[Tuple[Prefix, int]]]:
        """Deterministic contiguous split of the origin items.

        Never returns an empty batch: the batch count is clamped to the
        item count, and any empty slice that would still slip through
        (``batches`` asked for more workers than origins) is dropped so
        no worker spins up a simulator just to propagate nothing.
        """
        items = list(origins.items())
        batches = max(1, min(batches, len(items)))
        size, extra = divmod(len(items), batches)
        result: List[List[Tuple[Prefix, int]]] = []
        start = 0
        for index in range(batches):
            stop = start + size + (1 if index < extra else 0)
            if stop > start:
                result.append(items[start:stop])
            start = stop
        return result

    def _merge(
        self,
        origins: Mapping[Prefix, int],
        partials: List[PropagationResult],
    ) -> PropagationResult:
        """Union the per-prefix state of disjoint batch results."""
        merged = self._new_simulator()
        events = 0
        reachable_counts: Dict[Prefix, int] = {}
        for partial in partials:
            events += partial.events
            reachable_counts.update(partial.reachable_counts)
            for asn, speaker in partial.speakers.items():
                merged.speakers[asn].absorb(speaker)
        # Report counts in the caller's origin order, like a serial run.
        # Every origin must appear in exactly one batch result; a
        # KeyError here means the split/merge invariant broke.
        ordered = {prefix: reachable_counts[prefix] for prefix in origins}
        return PropagationResult(
            speakers=merged.speakers,
            origins=dict(origins),
            events=events,
            reachable_counts=ordered,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        """Serial propagation on the configured backend.

        With the default ``engine="event"`` this is identical to
        ``PropagationSimulator.run``.
        """
        name = self._forced_backend
        if name is None:
            name, _reason = self._resolve_backend(origins)
            return self._run_on(
                name, self._compression_plan_for(origins, backend=name), origins
            )
        return self._run_on(name, self._forced_plan, origins)

    def run_many(
        self,
        origins: Mapping[Prefix, int],
        workers: Optional[int] = None,
        executor: str = "thread",
    ) -> PropagationResult:
        """Propagate ``origins``, batched over ``workers`` simulators.

        ``workers=None``, ``0`` or ``1`` runs serially (no executor, no
        merge — bit-identical to :meth:`run`).  Larger values split the
        origins into ``workers`` contiguous batches and propagate them
        concurrently on the chosen executor; results are merged into a
        single :class:`PropagationResult` that is identical to the
        serial one (prefix propagation is independent by construction).

        ``executor`` selects ``"thread"`` (default; no pickling) or
        ``"process"`` (true parallelism; the graph and policies are
        shared with the workers by fork inheritance — or pickled once
        per worker on spawn platforms — and only the small per-batch
        origin lists and results cross the pickle boundary per task).
        """
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        # Resolve the backend and the compression plan once, on the
        # complete origin set, and pin both for every batch:
        # auto/equilibrium selection looks at the address families
        # present in the origins, and the plan pins the full origin set
        # as singletons — a batch that happens to contain only one AFI
        # or an origin subset must not pick a different backend or
        # collapse an AS that another batch originates from.
        resolved, _reason = self._resolve_backend(origins)
        plan = self._compression_plan_for(origins, backend=resolved)
        tracer = get_tracer()
        with tracer.span(
            "propagation.run_many",
            backend=resolved,
            executor=executor,
            workers=workers or 1,
            prefixes=len(origins),
        ):
            if not workers or workers <= 1 or len(origins) <= 1:
                self._forced_backend, self._forced_plan = resolved, plan
                try:
                    return self.run(origins)
                finally:
                    self._forced_backend = self._forced_plan = None
            batches = self._split(origins, workers)
            self._forced_backend, self._forced_plan = resolved, plan
            # The context's parent is the run_many span just opened, so
            # every batch span — local thread or pool process — joins
            # the tree right here.
            self._forced_trace = tracer.context() if tracer else None
            try:
                if len(batches) <= 1:
                    return self.run(origins)
                if executor == "thread":
                    with concurrent.futures.ThreadPoolExecutor(
                        max_workers=len(batches)
                    ) as pool:
                        partials = list(pool.map(self._run_batch, batches))
                    return self._merge(origins, partials)
                return self._merge(origins, self._run_batches_in_processes(batches))
            finally:
                self._forced_backend = self._forced_plan = None
                self._forced_trace = None

    def _run_batches_in_processes(
        self, batches: List[List[Tuple[Prefix, int]]]
    ) -> List[PropagationResult]:
        """Propagate batches on a process pool without per-task pickling.

        The engine is exposed to the workers through
        :data:`_SHARED_ENGINES`: registered *before* the pool exists, so
        fork-started workers inherit it for free, and handed to the
        pool initializer as a documented fallback for spawn/forkserver
        platforms (one pickle per worker instead of one per batch).
        Either way each task ships only ``(key, batch)``, and the
        results are bit-identical to a serial run — the golden
        determinism suite pins both code paths.
        """
        key = next(_shared_engine_keys)
        forked = _start_method() == "fork"
        if forked:
            _SHARED_ENGINES[key] = self
            initializer, initargs = None, ()
        else:
            initializer, initargs = _register_shared_engine, (key, self)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(batches),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                return list(pool.map(_run_shared_batch, [key] * len(batches), batches))
        finally:
            if forked:
                del _SHARED_ENGINES[key]
