"""Propagation outcomes, shared by every propagation backend.

:class:`PropagationResult` is the **engine-agnostic contract** of the
propagation subsystem: whichever backend computed it (the event-driven
simulator, the Gao-Rexford equilibrium solver or the array-native core
— see :mod:`repro.bgp.backends`), downstream consumers read the same
shape:

* ``speakers`` — converged :class:`~repro.bgp.router.BGPSpeaker`
  objects whose Loc-RIBs hold the best routes (the collectors snapshot
  these),
* ``reachable_counts`` — per-prefix reachability, available even when
  RIBs were pruned to the vantage points, and
* ``events`` — the number of best-route changes processed.  Only the
  event-faithful backends (``event``, ``array``) report a meaningful
  count; the equilibrium solver computes the fixed point directly and
  reports ``0``.

This module also hosts :class:`ConvergenceError` and the
:func:`originate_one_prefix_per_as` convenience so backends do not have
to import the event simulator module just for its result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.relationships import AFI

if TYPE_CHECKING:  # backends.base imports this module; type-only reverse edge
    from repro.bgp.backends.base import ResolutionForest
from repro.bgp.messages import Route
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import RibSnapshot
from repro.bgp.router import BGPSpeaker
from repro.topology.graph import ASGraph


class ConvergenceError(RuntimeError):
    """Raised when propagation does not quiesce within the event budget."""


@dataclass
class PropagationResult:
    """Outcome of a propagation run.

    Attributes:
        speakers: The fully converged speakers, keyed by ASN.
        origins: Which AS originated which prefix.
        events: Number of best-route changes processed (a measure of
            convergence work, reported by the benchmarks).  ``0`` for
            backends that compute the converged state directly.
        reachable_counts: For every propagated prefix, the number of ASes
            that ended up with a route to it (including the origin).
            Available even when per-AS RIBs were pruned to save memory.
        resolution: The converged best-sender forest
            (:class:`~repro.bgp.backends.base.ResolutionForest`),
            populated only by solver backends constructed with
            ``record_resolution=True``: per prefix, the column snapshot
            answering ``resolve(asn) -> (best sender ASN, learned
            relationship)`` for every reached AS — the origin resolves
            to ``(itself, None)``.  This is the ``resolve`` oracle of
            the chain-walk materializer; quotient-graph inflation
            consumes it so a compressed run never has to materialize
            routes for ASes nobody asked to keep.
    """

    speakers: Dict[int, BGPSpeaker]
    origins: Dict[Prefix, int]
    events: int = 0
    reachable_counts: Dict[Prefix, int] = field(default_factory=dict)
    resolution: Optional["ResolutionForest"] = None

    def snapshot(self, asn: int) -> RibSnapshot:
        """Frozen Loc-RIB of one AS."""
        return self.speakers[asn].snapshot()

    def best_route(self, asn: int, prefix: Prefix) -> Optional[Route]:
        """Best route of ``asn`` towards ``prefix`` (``None`` if unreachable)."""
        return self.speakers[asn].best_route(prefix)

    def best_path(self, asn: int, prefix: Prefix) -> Optional[Tuple[int, ...]]:
        """The full AS path (including ``asn``) towards ``prefix``."""
        route = self.best_route(asn, prefix)
        if route is None:
            return None
        return route.full_path()

    def reachable_prefixes(self, asn: int, afi: Optional[AFI] = None) -> List[Prefix]:
        """Prefixes for which ``asn`` holds a best route."""
        return self.speakers[asn].loc_rib.prefixes(afi)


def originate_one_prefix_per_as(
    graph: ASGraph,
    afi: AFI,
    allocator=None,
    ases: Optional[Iterable[int]] = None,
) -> Dict[Prefix, int]:
    """Convenience helper: every AS (in ``afi``) originates one prefix.

    ``allocator`` defaults to a fresh
    :class:`~repro.bgp.prefixes.PrefixAllocator`.
    """
    from repro.bgp.prefixes import PrefixAllocator

    allocator = allocator or PrefixAllocator()
    selected = list(ases) if ases is not None else graph.ases_in(afi)
    origins: Dict[Prefix, int] = {}
    for asn in selected:
        if not graph.node(asn).supports(afi):
            continue
        origins[allocator.prefix(asn, afi)] = asn
    return origins
