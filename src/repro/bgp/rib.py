"""Routing Information Bases for the BGP speakers.

Each simulated AS keeps:

* an **Adj-RIB-In** per neighbour: the routes received from that
  neighbour (after import policy was applied), and
* a **Loc-RIB**: the single best route per prefix, selected by the
  decision process in :mod:`repro.bgp.router`.

Collectors read the Adj-RIB-In of their vantage-point peers — exactly
what a RouteViews ``TABLE_DUMP2`` RIB snapshot contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.relationships import AFI
from repro.bgp.messages import Route
from repro.bgp.prefixes import Prefix


class AdjRibIn:
    """Routes received from one neighbour, keyed by prefix."""

    __slots__ = ("neighbor", "_routes")

    def __init__(self, neighbor: int) -> None:
        self.neighbor = neighbor
        self._routes: Dict[Prefix, Route] = {}

    def update(self, route: Route) -> None:
        """Store (or replace) the route for the route's prefix."""
        self._routes[route.prefix] = route

    def withdraw(self, prefix: Prefix) -> Optional[Route]:
        """Remove and return the route for ``prefix`` (``None`` if absent)."""
        return self._routes.pop(prefix, None)

    def route_for(self, prefix: Prefix) -> Optional[Route]:
        """The stored route for ``prefix``, if any."""
        return self._routes.get(prefix)

    def routes(self, afi: Optional[AFI] = None) -> List[Route]:
        """All stored routes, optionally filtered by address family."""
        if afi is None:
            return list(self._routes.values())
        return [route for route in self._routes.values() if route.afi is afi]

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())


class LocRib:
    """The best route per prefix, as selected by the decision process."""

    __slots__ = ("_routes",)

    def __init__(self) -> None:
        self._routes: Dict[Prefix, Route] = {}

    def install(self, route: Route) -> bool:
        """Install ``route`` as best for its prefix.

        Returns True when the Loc-RIB changed (no previous best, or a
        different route replaced it).
        """
        previous = self._routes.get(route.prefix)
        if previous == route:
            return False
        self._routes[route.prefix] = route
        return True

    def remove(self, prefix: Prefix) -> Optional[Route]:
        """Remove the best route for ``prefix`` (``None`` if absent)."""
        return self._routes.pop(prefix, None)

    def best(self, prefix: Prefix) -> Optional[Route]:
        """The currently installed best route for ``prefix``."""
        return self._routes.get(prefix)

    def routes(self, afi: Optional[AFI] = None) -> List[Route]:
        """All best routes, optionally filtered by address family."""
        if afi is None:
            return list(self._routes.values())
        return [route for route in self._routes.values() if route.afi is afi]

    def prefixes(self, afi: Optional[AFI] = None) -> List[Prefix]:
        """All prefixes with an installed best route."""
        return [route.prefix for route in self.routes(afi)]

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())


@dataclass
class RibSnapshot:
    """A frozen copy of an AS's RIB state, used by the collectors.

    Attributes:
        asn: The AS the snapshot belongs to.
        best_routes: The Loc-RIB content (per prefix best routes).
    """

    asn: int
    best_routes: Dict[Prefix, Route] = field(default_factory=dict)

    def routes(self, afi: Optional[AFI] = None) -> List[Route]:
        """Best routes in the snapshot, optionally per address family."""
        routes = list(self.best_routes.values())
        if afi is None:
            return routes
        return [route for route in routes if route.afi is afi]

    def __len__(self) -> int:
        return len(self.best_routes)
