"""BGP substrate: prefixes, attributes, routes, policies, speakers, propagation."""

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import (
    CommunityTagger,
    LocalPrefScheme,
    RoutingPolicy,
    TrafficEngineeringOverride,
    default_policies,
    gao_rexford_export_allowed,
)
from repro.bgp.engine import PropagationEngine
from repro.bgp.prefixes import Prefix, PrefixAllocator, group_by_afi
from repro.bgp.propagation import (
    ConvergenceError,
    PropagationResult,
    PropagationSimulator,
    originate_one_prefix_per_as,
)
from repro.bgp.reference import ReferenceBGPSpeaker, ReferencePropagationSimulator
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot
from repro.bgp.router import BGPSpeaker, Neighbor

__all__ = [
    "ASPath",
    "Community",
    "Origin",
    "PathAttributes",
    "Announcement",
    "Route",
    "CommunityTagger",
    "LocalPrefScheme",
    "RoutingPolicy",
    "TrafficEngineeringOverride",
    "default_policies",
    "gao_rexford_export_allowed",
    "Prefix",
    "PrefixAllocator",
    "group_by_afi",
    "ConvergenceError",
    "PropagationEngine",
    "PropagationResult",
    "PropagationSimulator",
    "ReferenceBGPSpeaker",
    "ReferencePropagationSimulator",
    "originate_one_prefix_per_as",
    "AdjRibIn",
    "LocRib",
    "RibSnapshot",
    "BGPSpeaker",
    "Neighbor",
]
