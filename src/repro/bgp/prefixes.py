"""IP prefix handling for both address families.

The reproduction never routes real packets, but prefixes still matter:
the collectors archive one RIB entry per (vantage point, prefix), paths
are counted per prefix, and the AFI of a prefix decides which plane a
path belongs to.  This module wraps :mod:`ipaddress` with the small
amount of convenience the rest of the library needs, plus a deterministic
per-AS prefix allocator used by the synthetic dataset builder.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

from repro.core.relationships import AFI

_IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 or IPv6 prefix in CIDR notation.

    The textual form is normalised through :mod:`ipaddress`, so two
    prefixes describing the same network compare equal regardless of how
    they were written.
    """

    network: str

    def __init__(self, network: Union[str, _IPNetwork]) -> None:  # noqa: D107
        parsed = (
            network
            if isinstance(network, (ipaddress.IPv4Network, ipaddress.IPv6Network))
            else ipaddress.ip_network(network, strict=True)
        )
        object.__setattr__(self, "network", str(parsed))
        # The address family is consulted on every import/export decision
        # of the propagation simulator; computing it through ``parsed``
        # would re-run the ipaddress parser each time (the seed profile
        # showed ~40 % of propagation wall time there), so it is derived
        # once at construction.  Not a dataclass field: equality,
        # ordering and hashing stay keyed on ``network`` alone.
        object.__setattr__(
            self, "_afi", AFI.IPV4 if parsed.version == 4 else AFI.IPV6
        )
        # Prefixes key every RIB dict in the propagation simulator; the
        # dataclass-generated hash builds a throwaway tuple per call, so
        # the hash is precomputed alongside.
        object.__setattr__(self, "_hash", hash((Prefix, str(parsed))))

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:  # instances restored from pickles
            value = hash((Prefix, self.network))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self):
        # The cached hash depends on the writing process's hash seed
        # (str hash randomization), so it must never cross a pickle
        # boundary; __hash__ recomputes it lazily on the reading side.
        return {"network": self.network, "_afi": self._afi}

    def __setstate__(self, state):
        object.__setattr__(self, "network", state["network"])
        object.__setattr__(self, "_afi", state["_afi"])

    @property
    def parsed(self) -> _IPNetwork:
        """The underlying :mod:`ipaddress` network object."""
        return ipaddress.ip_network(self.network)

    @property
    def afi(self) -> AFI:
        """Address family of the prefix."""
        try:
            return self._afi
        except AttributeError:  # instances restored from old pickles
            afi = AFI.IPV4 if self.parsed.version == 4 else AFI.IPV6
            object.__setattr__(self, "_afi", afi)
            return afi

    @property
    def length(self) -> int:
        """Prefix length in bits."""
        return self.parsed.prefixlen

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if self.afi is not other.afi:
            return False
        return other.parsed.subnet_of(self.parsed)

    def __str__(self) -> str:
        return self.network


class PrefixAllocator:
    """Deterministically allocate origin prefixes to ASes.

    Every AS receives one IPv4 ``/20`` carved from ``10.0.0.0/8`` and/or
    one IPv6 ``/32`` carved from the ``3fff::/20`` documentation block
    (sized so that tens of thousands of ASes fit without collision).
    Allocation is a pure function of the ASN, so independently
    constructed allocators agree.
    """

    IPV4_BASE = ipaddress.ip_network("10.0.0.0/8")
    IPV4_PLEN = 20
    IPV6_BASE = ipaddress.ip_network("3fff::/20")
    IPV6_PLEN = 32

    def __init__(self) -> None:
        self._ipv4_capacity = 2 ** (self.IPV4_PLEN - self.IPV4_BASE.prefixlen)
        self._ipv6_capacity = 2 ** (self.IPV6_PLEN - self.IPV6_BASE.prefixlen)

    def ipv4_prefix(self, asn: int) -> Prefix:
        """The IPv4 prefix originated by ``asn``."""
        index = asn % self._ipv4_capacity
        offset = index * 2 ** (32 - self.IPV4_PLEN)
        address = int(self.IPV4_BASE.network_address) + offset
        return Prefix(f"{ipaddress.IPv4Address(address)}/{self.IPV4_PLEN}")

    def ipv6_prefix(self, asn: int) -> Prefix:
        """The IPv6 prefix originated by ``asn``."""
        index = asn % self._ipv6_capacity
        offset = index * 2 ** (128 - self.IPV6_PLEN)
        address = int(self.IPV6_BASE.network_address) + offset
        return Prefix(f"{ipaddress.IPv6Address(address)}/{self.IPV6_PLEN}")

    def prefix(self, asn: int, afi: AFI) -> Prefix:
        """The prefix originated by ``asn`` in the requested plane."""
        return self.ipv4_prefix(asn) if afi is AFI.IPV4 else self.ipv6_prefix(asn)

    def prefixes_for(self, asns: Iterable[int], afi: AFI) -> Dict[int, Prefix]:
        """Allocate prefixes for many ASes at once."""
        return {asn: self.prefix(asn, afi) for asn in asns}


def group_by_afi(prefixes: Iterable[Prefix]) -> Dict[AFI, List[Prefix]]:
    """Split a collection of prefixes by address family."""
    groups: Dict[AFI, List[Prefix]] = {AFI.IPV4: [], AFI.IPV6: []}
    for prefix in prefixes:
        groups[prefix.afi].append(prefix)
    return groups
