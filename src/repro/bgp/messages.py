"""BGP route objects exchanged by the propagation simulator.

The simulator works at the granularity of a *route*: one prefix plus the
path attributes a particular AS currently uses to reach it.  Routes are
immutable; importing a route at a neighbour produces a new route with an
extended AS path and freshly computed LOCAL_PREF / communities.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.prefixes import Prefix


@dataclass(frozen=True, slots=True)
class Route:
    """A route to ``prefix`` as held by AS ``holder``.

    Routes are created once per import event, so the class is slotted to
    keep the per-instance footprint small at simulation scale, and the
    :meth:`full_path` tuple is memoized (analysis code calls it
    repeatedly on converged routes).

    Attributes:
        prefix: The destination prefix.
        holder: The AS whose RIB this route lives in.
        attributes: Path attributes as seen by ``holder`` (the AS path
            does *not* include ``holder`` itself; it is prepended when
            the route is exported).
        learned_from: The neighbour AS the route was learned from, or
            ``None`` for locally originated routes.
        learned_relationship: ``holder``'s relationship towards
            ``learned_from`` (``C2P`` when learned from a provider, etc.);
            ``None`` for local routes.  This is what the export policy and
            the LOCAL_PREF assignment key off.
    """

    prefix: Prefix
    holder: int
    attributes: PathAttributes
    learned_from: Optional[int] = None
    learned_relationship: Optional[Relationship] = None
    _full_path: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Memo slot for the BGP decision-process preference key; computed
    # (once, routes are immutable) and read by BGPSpeaker._preference_key.
    _pref_key: Optional[Tuple[int, int, int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def afi(self) -> AFI:
        """Address family of the route."""
        return self.prefix.afi

    @property
    def as_path(self) -> ASPath:
        """Shortcut to the AS path attribute."""
        return self.attributes.as_path

    @property
    def origin_as(self) -> int:
        """The AS that originated the prefix."""
        return self.attributes.as_path.origin_as

    @property
    def local_pref(self) -> Optional[int]:
        """Shortcut to the LOCAL_PREF attribute."""
        return self.attributes.local_pref

    @property
    def communities(self) -> Tuple[Community, ...]:
        """Shortcut to the communities attribute."""
        return self.attributes.communities

    @property
    def is_local(self) -> bool:
        """True for routes originated by ``holder`` itself."""
        return self.learned_from is None

    def full_path(self) -> Tuple[int, ...]:
        """The AS path including the holder, observer-side first.

        Locally originated routes already carry the holder as their only
        hop, so it is not repeated.  The result is memoized.
        """
        path = self._full_path
        if path is None:
            if self.is_local:
                path = self.attributes.as_path.hops
            else:
                path = (self.holder,) + self.attributes.as_path.hops
            object.__setattr__(self, "_full_path", path)
        return path

    def with_attributes(self, attributes: PathAttributes) -> "Route":
        """Return a copy with different attributes."""
        return replace(self, attributes=attributes)

    @classmethod
    def originate(cls, prefix: Prefix, origin_as: int) -> "Route":
        """Create the locally originated route for a prefix."""
        attributes = PathAttributes(
            as_path=ASPath([origin_as]),
            local_pref=None,
            origin=Origin.IGP,
            next_hop="",
        )
        return cls(prefix=prefix, holder=origin_as, attributes=attributes)


@dataclass(frozen=True, slots=True)
class Announcement:
    """A route advertisement in flight from ``sender`` to ``receiver``.

    The announcement carries the attributes as exported by the sender
    (AS path already includes the sender; communities are the ones the
    sender chose to propagate).
    """

    prefix: Prefix
    sender: int
    receiver: int
    attributes: PathAttributes

    @property
    def afi(self) -> AFI:
        """Address family of the announced prefix."""
        return self.prefix.afi

    @property
    def as_path(self) -> ASPath:
        """Shortcut to the announced AS path."""
        return self.attributes.as_path
