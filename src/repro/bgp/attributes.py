"""BGP path attributes used by the reproduction.

Only the attributes the paper's methodology relies on are modelled:

* ``AS_PATH`` — the sequence of ASes a route advertisement traversed
  (most recent AS first, origin last), including prepending.
* ``COMMUNITIES`` — the (asn, value) tags attached by operators; the
  paper mines these for relationship and traffic-engineering semantics.
* ``LOCAL_PREF`` — the degree of preference an AS assigns to a route;
  combined with communities it forms the paper's "Rosetta Stone".
* ``MED``, ``ORIGIN``, ``NEXT_HOP`` — carried for realism of the MRT
  records and the decision process, but not interpreted by the analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class Origin(enum.Enum):
    """BGP ORIGIN attribute."""

    IGP = "IGP"
    EGP = "EGP"
    INCOMPLETE = "INCOMPLETE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Community:
    """A single RFC 1997 community value ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF_FFFF:
            raise ValueError("community ASN out of range")
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError("community value out of range")

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse the textual ``asn:value`` form."""
        try:
            asn_text, value_text = text.strip().split(":")
            return cls(int(asn_text), int(value_text))
        except (ValueError, AttributeError) as exc:
            raise ValueError(f"invalid community {text!r}") from exc

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


class ASPath:
    """An AS_PATH: neighbour-most AS first, origin AS last.

    The class keeps the raw sequence (with prepending) and offers a
    cleaned view with consecutive duplicates collapsed, which is what the
    topology/link extraction works on.
    """

    __slots__ = ("_hops",)

    def __init__(self, hops: Sequence[int]) -> None:
        hops = tuple(int(h) for h in hops)
        if not hops:
            raise ValueError("an AS path cannot be empty")
        if any(h < 0 for h in hops):
            raise ValueError("AS numbers in a path must be non-negative")
        self._hops = hops

    @property
    def hops(self) -> Tuple[int, ...]:
        """The raw hop sequence, including prepending."""
        return self._hops

    @property
    def origin_as(self) -> int:
        """The AS that originated the route (last hop)."""
        return self._hops[-1]

    @property
    def first_as(self) -> int:
        """The AS closest to the observer (first hop)."""
        return self._hops[0]

    def collapsed(self) -> Tuple[int, ...]:
        """Hops with consecutive duplicates (prepending) removed."""
        result: List[int] = []
        for hop in self._hops:
            if not result or result[-1] != hop:
                result.append(hop)
        return tuple(result)

    @property
    def has_prepending(self) -> bool:
        """True if any AS appears multiple times consecutively."""
        return len(self.collapsed()) != len(self._hops)

    @property
    def has_loop(self) -> bool:
        """True if an AS appears non-consecutively (a routing loop artifact)."""
        collapsed = self.collapsed()
        return len(set(collapsed)) != len(collapsed)

    def links(self) -> List[Tuple[int, int]]:
        """Adjacent AS pairs along the collapsed path, observer-side first."""
        collapsed = self.collapsed()
        return [(collapsed[i], collapsed[i + 1]) for i in range(len(collapsed) - 1)]

    def prepend(self, asn: int, times: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``times`` times."""
        if times < 1:
            raise ValueError("prepending count must be >= 1")
        asn = int(asn)
        if asn < 0:
            raise ValueError("AS numbers in a path must be non-negative")
        # The existing hops are already validated; bypassing __init__
        # avoids re-validating the whole path on every export event.
        path = ASPath.__new__(ASPath)
        path._hops = (asn,) * times + self._hops
        return path

    def contains(self, asn: int) -> bool:
        """True if the AS appears anywhere in the path."""
        return asn in self._hops

    def __len__(self) -> int:
        return len(self._hops)

    def __iter__(self):
        return iter(self._hops)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ASPath) and self._hops == other._hops

    def __hash__(self) -> int:
        return hash(self._hops)

    def __str__(self) -> str:
        return " ".join(str(h) for h in self._hops)

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a space-separated AS_PATH string (as found in MRT dumps)."""
        hops = [part for part in text.strip().split() if part]
        if not hops:
            raise ValueError("empty AS path string")
        cleaned: List[int] = []
        for hop in hops:
            # AS_SETs ("{64512,64513}") occasionally show up in dumps; the
            # paper's pipeline (and ours) drops the set members and keeps
            # the deterministic part of the path only.
            if hop.startswith("{"):
                break
            cleaned.append(int(hop))
        if not cleaned:
            raise ValueError(f"AS path {text!r} contains no plain AS hops")
        return cls(cleaned)


@dataclass(slots=True)
class PathAttributes:
    """The attribute set attached to one route advertisement.

    Slotted: one instance is allocated per import event in the
    propagation simulator, so the per-instance dict would dominate the
    route objects' memory footprint at scale.
    """

    as_path: ASPath
    local_pref: Optional[int] = None
    med: int = 0
    origin: Origin = Origin.IGP
    next_hop: str = ""
    communities: Tuple[Community, ...] = ()

    def with_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        """Return a copy with the communities replaced."""
        return PathAttributes(
            as_path=self.as_path,
            local_pref=self.local_pref,
            med=self.med,
            origin=self.origin,
            next_hop=self.next_hop,
            communities=tuple(communities),
        )

    def add_communities(self, communities: Iterable[Community]) -> "PathAttributes":
        """Return a copy with extra communities appended (duplicates removed)."""
        merged = list(self.communities)
        seen = set(merged)
        for community in communities:
            if community not in seen:
                merged.append(community)
                seen.add(community)
        return self.with_communities(merged)

    def communities_of(self, asn: int) -> List[Community]:
        """Communities whose administrator field is ``asn``."""
        return [c for c in self.communities if c.asn == asn]
