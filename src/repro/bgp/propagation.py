"""Network-wide BGP route propagation.

The :class:`PropagationSimulator` wires one :class:`~repro.bgp.router.BGPSpeaker`
per AS, derives each speaker's per-AFI neighbour relationships from the
annotated :class:`~repro.topology.graph.ASGraph`, originates the
requested prefixes and then lets announcements propagate until the
network is quiescent.

The propagation is event driven: whenever a speaker's best route for a
prefix changes, the new best is (re-)exported to every neighbour the
export policy allows, and withdrawals are sent to neighbours that had
previously received a route that is no longer exportable.  With
relationship-consistent policies this converges; a generous event cap
guards against pathological configurations and makes the failure mode a
loud exception instead of an endless loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import RibSnapshot
from repro.bgp.router import BGPSpeaker
from repro.topology.graph import ASGraph


class ConvergenceError(RuntimeError):
    """Raised when propagation does not quiesce within the event budget."""


@dataclass
class PropagationResult:
    """Outcome of a propagation run.

    Attributes:
        speakers: The fully converged speakers, keyed by ASN.
        origins: Which AS originated which prefix.
        events: Number of best-route changes processed (a measure of
            convergence work, reported by the benchmarks).
        reachable_counts: For every propagated prefix, the number of ASes
            that ended up with a route to it (including the origin).
            Available even when per-AS RIBs were pruned to save memory.
    """

    speakers: Dict[int, BGPSpeaker]
    origins: Dict[Prefix, int]
    events: int = 0
    reachable_counts: Dict[Prefix, int] = field(default_factory=dict)

    def snapshot(self, asn: int) -> RibSnapshot:
        """Frozen Loc-RIB of one AS."""
        return self.speakers[asn].snapshot()

    def best_route(self, asn: int, prefix: Prefix) -> Optional[Route]:
        """Best route of ``asn`` towards ``prefix`` (``None`` if unreachable)."""
        return self.speakers[asn].best_route(prefix)

    def best_path(self, asn: int, prefix: Prefix) -> Optional[Tuple[int, ...]]:
        """The full AS path (including ``asn``) towards ``prefix``."""
        route = self.best_route(asn, prefix)
        if route is None:
            return None
        return route.full_path()

    def reachable_prefixes(self, asn: int, afi: Optional[AFI] = None) -> List[Prefix]:
        """Prefixes for which ``asn`` holds a best route."""
        return self.speakers[asn].loc_rib.prefixes(afi)


class PropagationSimulator:
    """Propagate routes over an annotated AS topology."""

    def __init__(
        self,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]] = None,
        max_events_per_prefix: int = 200_000,
        keep_ribs_for: Optional[Iterable[int]] = None,
    ) -> None:
        """Create a simulator over ``graph``.

        ``keep_ribs_for`` enables the memory-saving mode: after each
        prefix converges, Adj-RIB-In state is dropped everywhere and the
        Loc-RIB entry is kept only for the listed ASes (typically the
        collector vantage points).  ``None`` keeps everything.
        """
        self.graph = graph
        self.max_events_per_prefix = max_events_per_prefix
        self.keep_ribs_for = set(keep_ribs_for) if keep_ribs_for is not None else None
        self.speakers: Dict[int, BGPSpeaker] = {}
        policies = policies or {}
        for asn in graph.ases:
            policy = policies.get(asn)
            self.speakers[asn] = BGPSpeaker(asn, policy)
        self._build_sessions()

    def _build_sessions(self) -> None:
        """Create the per-AFI BGP adjacencies from the annotated graph."""
        for afi in (AFI.IPV4, AFI.IPV6):
            for link in self.graph.links(afi):
                rel_ab = self.graph.relationship(link.a, link.b, afi)
                rel_ba = self.graph.relationship(link.b, link.a, afi)
                self.speakers[link.a].add_neighbor(link.b, rel_ab, afi)
                self.speakers[link.b].add_neighbor(link.a, rel_ba, afi)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        """Originate ``origins`` and propagate to quiescence.

        ``origins`` maps each prefix to the AS that originates it.  The
        origin AS must participate in the prefix's address family.
        """
        total_events = 0
        reachable_counts: Dict[Prefix, int] = {}
        for prefix, origin_asn in origins.items():
            if origin_asn not in self.speakers:
                raise KeyError(f"origin AS{origin_asn} is not in the topology")
            if not self.graph.node(origin_asn).supports(prefix.afi):
                raise ValueError(
                    f"AS{origin_asn} does not participate in {prefix.afi} "
                    f"but originates {prefix}"
                )
            total_events += self._propagate_prefix(prefix, origin_asn)
            reachable_counts[prefix] = sum(
                1
                for speaker in self.speakers.values()
                if speaker.best_route(prefix) is not None
            )
            if self.keep_ribs_for is not None:
                for asn, speaker in self.speakers.items():
                    speaker.prune_prefix(prefix, keep_best=asn in self.keep_ribs_for)
        return PropagationResult(
            speakers=self.speakers,
            origins=dict(origins),
            events=total_events,
            reachable_counts=reachable_counts,
        )

    def _propagate_prefix(self, prefix: Prefix, origin_asn: int) -> int:
        """Event-driven propagation of a single prefix; returns event count."""
        afi = prefix.afi
        origin = self.speakers[origin_asn]
        origin.originate(prefix)
        # Track which neighbours each AS has successfully announced to, so
        # that withdrawals can be sent when a new best is not exportable.
        announced_to: Dict[int, Set[int]] = {asn: set() for asn in self.speakers}
        queue = deque([origin_asn])
        queued: Set[int] = {origin_asn}
        events = 0
        while queue:
            events += 1
            if events > self.max_events_per_prefix:
                raise ConvergenceError(
                    f"prefix {prefix} did not converge within "
                    f"{self.max_events_per_prefix} events"
                )
            asn = queue.popleft()
            queued.discard(asn)
            speaker = self.speakers[asn]
            exportable = set(speaker.exportable_neighbors(prefix))
            # Withdraw from neighbours that no longer receive the route.
            for neighbor_asn in sorted(announced_to[asn] - exportable):
                announced_to[asn].discard(neighbor_asn)
                changed = self.speakers[neighbor_asn].withdraw(prefix, asn)
                if changed and neighbor_asn not in queued:
                    queue.append(neighbor_asn)
                    queued.add(neighbor_asn)
            # (Re-)announce to every exportable neighbour.
            for neighbor_asn in sorted(exportable):
                announcement = speaker.export_to(neighbor_asn, prefix)
                if announcement is None:
                    continue
                announced_to[asn].add(neighbor_asn)
                changed = self.speakers[neighbor_asn].receive(announcement)
                if changed and neighbor_asn not in queued:
                    queue.append(neighbor_asn)
                    queued.add(neighbor_asn)
        return events


def originate_one_prefix_per_as(
    graph: ASGraph,
    afi: AFI,
    allocator=None,
    ases: Optional[Iterable[int]] = None,
) -> Dict[Prefix, int]:
    """Convenience helper: every AS (in ``afi``) originates one prefix.

    ``allocator`` defaults to a fresh
    :class:`~repro.bgp.prefixes.PrefixAllocator`.
    """
    from repro.bgp.prefixes import PrefixAllocator

    allocator = allocator or PrefixAllocator()
    selected = list(ases) if ases is not None else graph.ases_in(afi)
    origins: Dict[Prefix, int] = {}
    for asn in selected:
        if not graph.node(asn).supports(afi):
            continue
        origins[allocator.prefix(asn, afi)] = asn
    return origins
