"""Network-wide BGP route propagation.

The :class:`PropagationSimulator` wires one :class:`~repro.bgp.router.BGPSpeaker`
per AS, derives each speaker's per-AFI neighbour relationships from the
annotated :class:`~repro.topology.graph.ASGraph`, originates the
requested prefixes and then lets announcements propagate until the
network is quiescent.

The propagation is event driven: whenever a speaker's best route for a
prefix changes, the new best is (re-)exported to every neighbour the
export policy allows, and withdrawals are sent to neighbours that had
previously received a route that is no longer exportable.  With
relationship-consistent policies this converges; a generous event cap
guards against pathological configurations and makes the failure mode a
loud exception instead of an endless loop.

Performance notes
-----------------

The hot loop is profile-guided (see ``docs/performance.md``):

* **Export plans.**  For every speaker and AFI the simulator precomputes,
  per learned-relationship class, the pre-sorted tuple of neighbours the
  export policy admits.  ``RoutingPolicy.export_allowed`` is a pure
  function of ``(learned_relationship, neighbour_relationship, neighbour,
  afi)``, so the per-event policy evaluation and ``sorted()`` calls of
  the seed implementation collapse into one dict lookup.  Plans are
  rebuilt at the start of every :meth:`run` call, so policy changes made
  between runs are honoured; mutating policies *during* a run is not
  supported (the seed implementation converged to whatever the policy
  said mid-flight, which no caller relied on).
* **Receiver-independent exports.**  The exported attribute set does not
  depend on the receiving neighbour, so it is computed once per
  best-route change and fanned out.
* **Incremental reachability.**  Reachable counts are tracked as loc-RIB
  entries appear/disappear during the event processing instead of the
  seed's O(ASes) post-scan per prefix.
* **Touched-set pruning.**  ``keep_ribs_for`` pruning only visits the
  speakers that actually acquired state for the prefix instead of every
  speaker in the topology.

The frozen seed implementation lives in :mod:`repro.bgp.reference`;
golden-equivalence tests assert the two produce identical routes, and
the benchmark harness measures the speedup between them.

This simulator is also the ``event`` backend of the pluggable engine
layer (:mod:`repro.bgp.backends`): the equilibrium solver and the
array-native core are cross-validated against it as the oracle.  The
result types it shares with the other backends live in
:mod:`repro.bgp.results` and are re-exported here for compatibility.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.results import (
    ConvergenceError,
    PropagationResult,
    originate_one_prefix_per_as,
)
from repro.bgp.router import BGPSpeaker
from repro.topology.graph import ASGraph

__all__ = [
    "ConvergenceError",
    "PropagationResult",
    "PropagationSimulator",
    "originate_one_prefix_per_as",
]

#: Learned-relationship classes an export decision can key off.
_LEARNED_CLASSES: Tuple[Optional[Relationship], ...] = (
    None,
    Relationship.P2C,
    Relationship.C2P,
    Relationship.P2P,
    Relationship.SIBLING,
)


#: Shared empty export set for speakers with no plan in a plane.
_EMPTY_SET: frozenset = frozenset()


class PropagationSimulator:
    """Propagate routes over an annotated AS topology."""

    def __init__(
        self,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]] = None,
        max_events_per_prefix: int = 200_000,
        keep_ribs_for: Optional[Iterable[int]] = None,
    ) -> None:
        """Create a simulator over ``graph``.

        ``keep_ribs_for`` enables the memory-saving mode: after each
        prefix converges, Adj-RIB-In state is dropped everywhere and the
        Loc-RIB entry is kept only for the listed ASes (typically the
        collector vantage points).  ``None`` keeps everything.
        """
        self.graph = graph
        self.max_events_per_prefix = max_events_per_prefix
        self.keep_ribs_for = set(keep_ribs_for) if keep_ribs_for is not None else None
        self.speakers: Dict[int, BGPSpeaker] = {}
        policies = policies or {}
        for asn in graph.ases:
            policy = policies.get(asn)
            self.speakers[asn] = BGPSpeaker(asn, policy)
        self._build_sessions()
        # afi -> asn -> learned-relationship class -> (pre-sorted tuple of
        # (neighbour, neighbour's-relationship-towards-asn) pairs,
        # frozenset of neighbour ASNs).  Built lazily per run().
        self._export_plans: Dict[AFI, Dict[int, Dict[Optional[Relationship], Tuple[Tuple, frozenset]]]] = {}
        # Prefixes propagated by earlier run() calls on this instance;
        # re-propagating one invalidates the incremental reachable count,
        # which then falls back to a full scan.
        self._seen_prefixes: Set[Prefix] = set()

    def _build_sessions(self) -> None:
        """Create the per-AFI BGP adjacencies from the annotated graph."""
        for afi in (AFI.IPV4, AFI.IPV6):
            for asn, speaker in self.speakers.items():
                for neighbor, relationship in self.graph.oriented_neighbors(asn, afi):
                    speaker.add_neighbor(neighbor, relationship, afi)

    def _build_export_plans(self) -> None:
        """Precompute per-speaker, per-AFI export adjacency tuples.

        ``RoutingPolicy.export_allowed`` is consulted once per (learned
        class, neighbour) pair here instead of once per propagation
        event, so custom policy objects keep working as long as their
        ``export_allowed`` is a pure function of its arguments.
        """
        plans: Dict[AFI, Dict[int, Dict[Optional[Relationship], Tuple[Tuple, frozenset]]]] = {
            AFI.IPV4: {},
            AFI.IPV6: {},
        }
        for asn, speaker in self.speakers.items():
            policy = speaker.policy
            speaker.reset_import_cache()
            for afi in (AFI.IPV4, AFI.IPV6):
                neighbors = speaker.sorted_neighbors(afi)
                if not neighbors:
                    continue
                per_learned = {}
                for learned in _LEARNED_CLASSES:
                    # Each pair carries the *receiver's* relationship
                    # towards this speaker, so the import fast path does
                    # not have to re-resolve its neighbour table.
                    allowed = tuple(
                        (n.asn, n.relationship.inverse)
                        for n in neighbors
                        if policy.export_allowed(learned, n.relationship, n.asn, afi)
                    )
                    per_learned[learned] = (
                        allowed,
                        frozenset(pair[0] for pair in allowed),
                    )
                plans[afi][asn] = per_learned
        self._export_plans = plans

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        """Originate ``origins`` and propagate to quiescence.

        ``origins`` maps each prefix to the AS that originates it.  The
        origin AS must participate in the prefix's address family.
        """
        self._build_export_plans()
        total_events = 0
        reachable_counts: Dict[Prefix, int] = {}
        keep = self.keep_ribs_for
        for prefix, origin_asn in origins.items():
            if origin_asn not in self.speakers:
                raise KeyError(f"origin AS{origin_asn} is not in the topology")
            if not self.graph.node(origin_asn).supports(prefix.afi):
                raise ValueError(
                    f"AS{origin_asn} does not participate in {prefix.afi} "
                    f"but originates {prefix}"
                )
            fresh = prefix not in self._seen_prefixes
            self._seen_prefixes.add(prefix)
            events, reachable, announced_to = self._propagate_prefix(prefix, origin_asn)
            total_events += events
            if not fresh:
                # Stale per-prefix state from an earlier run() makes the
                # incremental count unreliable; recount the slow way.
                reachable = sum(
                    1
                    for speaker in self.speakers.values()
                    if speaker.best_route(prefix) is not None
                )
            reachable_counts[prefix] = reachable
            if keep is not None:
                # Only the ASes that received an announcement (or the
                # origin) acquired per-prefix state worth pruning.
                touched = {origin_asn}
                touched.update(*announced_to.values())
                touched.update(announced_to)
                speakers = self.speakers
                for asn in touched:
                    speakers[asn].prune_prefix(prefix, keep_best=asn in keep)
        return PropagationResult(
            speakers=self.speakers,
            origins=dict(origins),
            events=total_events,
            reachable_counts=reachable_counts,
        )

    def _propagate_prefix(
        self, prefix: Prefix, origin_asn: int
    ) -> Tuple[int, int, Dict[int, Set[int]]]:
        """Event-driven propagation of a single prefix.

        Returns ``(events, reachable, announced_to)``: the number of
        events processed, the number of ASes holding a route at
        quiescence, and the per-AS sets of neighbours currently holding
        an announcement (used for targeted pruning — any AS with
        per-prefix state appears in those sets or is the origin).
        """
        afi = prefix.afi
        speakers = self.speakers
        plans = self._export_plans[afi]
        max_events = self.max_events_per_prefix
        origin = speakers[origin_asn]
        origin.originate(prefix)
        reachable = 1  # the origin itself
        # Track which neighbours each AS has successfully announced to, so
        # that withdrawals can be sent when a new best is not exportable.
        announced_to: Dict[int, Set[int]] = {}
        queue = deque((origin_asn,))
        queued: Set[int] = {origin_asn}
        events = 0
        while queue:
            events += 1
            if events > max_events:
                raise ConvergenceError(
                    f"prefix {prefix} did not converge within "
                    f"{max_events} events"
                )
            asn = queue.popleft()
            queued.discard(asn)
            speaker = speakers[asn]
            best = speaker.loc_rib._routes.get(prefix)
            if best is None:
                exportable: Tuple = ()
                exportable_set: frozenset = _EMPTY_SET
                learned_from = None
            else:
                plan = plans.get(asn)
                if plan is None:
                    exportable, exportable_set = (), _EMPTY_SET
                else:
                    exportable, exportable_set = plan[best.learned_relationship]
                learned_from = best.learned_from
            sent = announced_to.get(asn)
            # Withdraw from neighbours that no longer receive the route.
            if sent:
                stale = sent - exportable_set
                if learned_from is not None and learned_from in sent:
                    stale.add(learned_from)
                if stale:
                    for neighbor_asn in sorted(stale):
                        sent.discard(neighbor_asn)
                        neighbor = speakers[neighbor_asn]
                        neighbor_routes = neighbor.loc_rib._routes
                        had = prefix in neighbor_routes
                        if neighbor.withdraw(prefix, asn):
                            if had and prefix not in neighbor_routes:
                                reachable -= 1
                            if neighbor_asn not in queued:
                                queue.append(neighbor_asn)
                                queued.add(neighbor_asn)
            # (Re-)announce to every exportable neighbour.
            if exportable:
                attributes = speaker.exported_attributes(best)
                if sent is None:
                    sent = announced_to[asn] = set()
                for neighbor_asn, receiver_rel in exportable:
                    if neighbor_asn == learned_from:
                        continue
                    sent.add(neighbor_asn)
                    neighbor = speakers[neighbor_asn]
                    neighbor_routes = neighbor.loc_rib._routes
                    had = prefix in neighbor_routes
                    changed = neighbor.import_route(
                        prefix, asn, receiver_rel, attributes
                    )
                    if changed:
                        if (prefix in neighbor_routes) != had:
                            reachable += 1 if not had else -1
                        if neighbor_asn not in queued:
                            queue.append(neighbor_asn)
                            queued.add(neighbor_asn)
        return events, reachable, announced_to
