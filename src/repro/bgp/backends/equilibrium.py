"""Gao-Rexford equilibrium solver: converged best paths without events.

With vanilla valley-free policies the converged routing state is unique
and can be computed directly, prefix by prefix, instead of simulated:
every AS strictly prefers customer-learned routes over peer-learned
over provider-learned (the :class:`~repro.bgp.policy.LocalPrefScheme`
ordering invariant), ties break on shorter AS path and then on lower
neighbour ASN — exactly the event engine's decision key.  That makes
the fixed point a three-phase preference-ordered BFS (the construction
used by the bgpsim family of simulators):

Phase 1 — **customer routes**.  Customer-learned (and locally
originated) routes are exportable to everyone, so the set of ASes with
a customer-class route is exactly the set reachable from the origin by
repeatedly walking customer→provider edges.  A level BFS along
``providers_of`` yields, per AS, the shortest such chain and the
lowest-ASN sender among the shortest — which *is* the AS's best route,
because no peer/provider-class candidate can beat customer LOCAL_PREF.

Phase 2 — **peer routes**.  Peer-learned routes are not re-exported to
peers, so a peer-class route is always exactly one peer hop away from
a customer-class (or origin) AS.  Each unfixed AS adjacent to the
phase-1 set over a P2P edge picks the minimal ``(path length, sender
ASN)`` candidate.

Phase 3 — **provider routes**.  Every best route is exportable to
customers, so provider-class routes flow down ``customers_of`` edges
from *all* fixed ASes.  Seeding a unit-weight bucket queue with the
fixed ASes at their path lengths and expanding downward finalizes each
remaining AS at its minimal length with the lowest-ASN provider among
the minimal — again the event decision key, because all
provider-class candidates at an AS share its provider LOCAL_PREF.

The solver processes no events at all (``PropagationResult.events`` is
0) and only materializes :class:`~repro.bgp.messages.Route` objects for
the ASes that keep them, via the shared chain-walk materializer — at
quiescence the best-sender forest is consistent, so replaying the real
export/import transforms along it reproduces the event engine's routes
attribute for attribute.

Applicability
-------------

The construction is valid only when the class ordering and the
valley-free export rule actually hold, per address family:

* every policy is a plain :class:`~repro.bgp.policy.RoutingPolicy` with
  a plain :class:`~repro.bgp.policy.LocalPrefScheme` (subclassing either
  may redefine preferences or imports arbitrarily),
* no traffic-engineering override touches the plane (an override with
  an empty prefix list touches every plane),
* no export relaxations in the plane (relaxed exports create valley
  paths — multi-hop peer chains, provider routes re-exported upward),
* no SIBLING links in the plane (sibling preference sits between
  customer and peer and siblings re-export everything, which breaks the
  three-class phase structure).

:meth:`EquilibriumBackend.inapplicable_reason` encodes these rules; the
engine consults it and falls back to the event backend (``auto`` and
``equilibrium`` engine modes) instead of ever running this solver on a
configuration it cannot handle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.relationships import AFI, Relationship
from repro.bgp.backends.base import (
    BackendNotApplicable,
    PropagationBackend,
    ResolutionForest,
    install_converged_routes,
    speakers_without_sessions,
)
from repro.bgp.policy import LocalPrefScheme, RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.results import PropagationResult
from repro.topology.graph import ASGraph

#: Learned-relationship codes used in the per-AS result arrays.
_LOCAL, _FROM_CUSTOMER, _FROM_PEER, _FROM_PROVIDER = 0, 1, 2, 3

_REL_OF_CODE = {
    _FROM_CUSTOMER: Relationship.P2C,
    _FROM_PEER: Relationship.P2P,
    _FROM_PROVIDER: Relationship.C2P,
}


class _Plane:
    """Interned per-AFI adjacency: dense ids, relationship-split edges."""

    __slots__ = ("providers", "peers", "customers")

    def __init__(self, graph: ASGraph, id_of: Dict[int, int], asns: List[int], afi: AFI) -> None:
        # Neighbour lists come out of the graph sorted by ASN; ids are
        # assigned in ascending-ASN order, so id order == ASN order and
        # min-id tie breaking below is exactly min-ASN tie breaking.
        self.providers = [
            [id_of[n] for n in graph.providers_of(asn, afi)] for asn in asns
        ]
        self.peers = [[id_of[n] for n in graph.peers_of(asn, afi)] for asn in asns]
        self.customers = [
            [id_of[n] for n in graph.customers_of(asn, afi)] for asn in asns
        ]


class EquilibriumBackend(PropagationBackend):
    """Direct fixed-point computation for vanilla Gao-Rexford policies."""

    name = "equilibrium"
    supports_resolution = True

    def __init__(self, graph, policies=None, max_events_per_prefix=200_000, keep_ribs_for=None, record_resolution=False):
        super().__init__(graph, policies, max_events_per_prefix, keep_ribs_for, record_resolution)
        self._asns: List[int] = graph.ases  # sorted ascending
        self._id_of: Dict[int, int] = {asn: i for i, asn in enumerate(self._asns)}
        self._planes: Dict[AFI, _Plane] = {}
        n = len(self._asns)
        # Per-prefix solver state, reused across prefixes (reset via the
        # touched list): path length (0 = no route), best sender id
        # (-1 none, -2 locally originated) and learned-class code.
        self._dist = [0] * n
        self._sender = [-1] * n
        self._relc = [_LOCAL] * n

    # ------------------------------------------------------------------
    # applicability
    # ------------------------------------------------------------------
    @classmethod
    def inapplicable_reason(
        cls,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]],
        afi: AFI,
    ) -> Optional[str]:
        policies = policies or {}
        for asn in graph.ases_in(afi):
            policy = policies.get(asn)
            if policy is None:
                continue  # speakers default to a vanilla RoutingPolicy
            if type(policy) is not RoutingPolicy:
                return (
                    f"AS{asn} uses a custom policy class "
                    f"({type(policy).__name__})"
                )
            if type(policy.local_pref) is not LocalPrefScheme:
                return (
                    f"AS{asn} uses a custom LOCAL_PREF scheme "
                    f"({type(policy.local_pref).__name__})"
                )
            for override in policy.te_overrides:
                if not override.prefixes or any(
                    prefix.afi is afi for prefix in override.prefixes
                ):
                    return (
                        f"AS{asn} has a traffic-engineering override "
                        f"affecting {afi}"
                    )
            if policy.relaxed_export_neighbors.get(afi):
                return f"AS{asn} relaxes exports in {afi}"
        for link in graph.links(afi):
            if graph.relationship(link.a, link.b, afi) is Relationship.SIBLING:
                return f"sibling link {link.a}-{link.b} in {afi}"
        return None

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _plane(self, afi: AFI) -> _Plane:
        plane = self._planes.get(afi)
        if plane is None:
            plane = self._planes[afi] = _Plane(
                self.graph, self._id_of, self._asns, afi
            )
        return plane

    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        for afi in {prefix.afi for prefix in origins}:
            reason = self.inapplicable_reason(self.graph, self.policies, afi)
            if reason is not None:
                raise BackendNotApplicable(reason)
        keep = self.keep_ribs_for
        # keep == empty set means "materialize nothing" (the quotient-graph
        # path: the forest carries the decisions out) — skip building
        # speakers that would only ever hold empty RIBs.
        speakers = (
            speakers_without_sessions(self.graph, self.policies)
            if keep is None or keep
            else {}
        )
        asns = self._asns
        id_of = self._id_of
        sender = self._sender
        relc = self._relc
        # Pruned mode: interned (asn, id) pairs so the per-prefix target
        # scan is O(|keep|), not O(touched) x a list-membership probe.
        keep_ids = (
            None
            if keep is None
            else [(asn, id_of[asn]) for asn in keep if asn in id_of]
        )
        reachable_counts: Dict[Prefix, int] = {}
        forest = (
            ResolutionForest(asns, id_of, _REL_OF_CODE)
            if self.record_resolution
            else None
        )

        def resolve(asn: int):
            i = id_of[asn]
            return asns[sender[i]], _REL_OF_CODE[relc[i]]

        for prefix, origin_asn in origins.items():
            if origin_asn not in id_of:
                raise KeyError(f"origin AS{origin_asn} is not in the topology")
            if not self.graph.node(origin_asn).supports(prefix.afi):
                raise ValueError(
                    f"AS{origin_asn} does not participate in {prefix.afi} "
                    f"but originates {prefix}"
                )
            touched = self._solve(self._plane(prefix.afi), id_of[origin_asn])
            reachable_counts[prefix] = len(touched)
            if keep_ids is None:
                targets = [asns[i] for i in touched]
            else:
                targets = [asn for asn, i in keep_ids if sender[i] != -1]
            install_converged_routes(
                speakers, prefix, origin_asn, targets, resolve
            )
            if forest is not None:
                # Column snapshot before the reset below wipes the state.
                forest.record(prefix, sender, relc, len(touched))
            dist = self._dist
            for i in touched:
                dist[i] = 0
                sender[i] = -1
                relc[i] = _LOCAL
        return PropagationResult(
            speakers=speakers,
            origins=dict(origins),
            events=0,
            reachable_counts=reachable_counts,
            resolution=forest,
        )

    def _solve(self, plane: _Plane, origin: int) -> List[int]:
        """Fix the best-sender forest for one prefix; returns touched ids."""
        dist = self._dist
        sender = self._sender
        relc = self._relc
        providers = plane.providers
        peers = plane.peers
        customers = plane.customers

        dist[origin] = 1
        sender[origin] = -2
        touched = [origin]

        # Phase 1: customer-class routes, level BFS up provider edges.
        level = [origin]
        d = 1
        while level:
            next_level: List[int] = []
            for u in level:
                for p in providers[u]:
                    dp = dist[p]
                    if dp == 0:
                        dist[p] = d + 1
                        sender[p] = u
                        relc[p] = _FROM_CUSTOMER
                        touched.append(p)
                        next_level.append(p)
                    elif dp == d + 1 and u < sender[p]:
                        # Same shortest length, lower sender ASN wins
                        # (ids are ASN-ordered).
                        sender[p] = u
            level = next_level
            d += 1

        # Phase 2: peer-class routes, exactly one P2P hop off the
        # customer-fixed set (peer-learned routes are not re-exported to
        # peers, so longer peer chains cannot exist).
        peer_best: Dict[int, int] = {}
        peer_from: Dict[int, int] = {}
        for w in touched:
            dw1 = dist[w] + 1
            for v in peers[w]:
                if dist[v] != 0:
                    continue
                known = peer_best.get(v)
                if known is None or dw1 < known or (dw1 == known and w < peer_from[v]):
                    peer_best[v] = dw1
                    peer_from[v] = w
        for v, dv in peer_best.items():
            dist[v] = dv
            sender[v] = peer_from[v]
            relc[v] = _FROM_PEER
            touched.append(v)

        # Phase 3: provider-class routes flow down customer edges from
        # *every* fixed AS.  Unit-weight Dijkstra as a bucket queue over
        # path length, seeded with the fixed set at its lengths; each
        # bucket is complete before it is processed (discovery can only
        # append to later buckets), so min-id updates within a bucket
        # reproduce the lowest-ASN-among-shortest tie break.
        buckets: Dict[int, List[int]] = {}
        dmax = 0
        for x in touched:
            dx = dist[x]
            buckets.setdefault(dx, []).append(x)
            if dx > dmax:
                dmax = dx
        d = 1
        while d <= dmax:
            bucket = buckets.get(d)
            if bucket:
                for u in bucket:
                    for c in customers[u]:
                        dc = dist[c]
                        if dc == 0:
                            dist[c] = d + 1
                            sender[c] = u
                            relc[c] = _FROM_PROVIDER
                            touched.append(c)
                            buckets.setdefault(d + 1, []).append(c)
                            if d + 1 > dmax:
                                dmax = d + 1
                        elif (
                            dc == d + 1
                            and relc[c] == _FROM_PROVIDER
                            and u < sender[c]
                        ):
                            sender[c] = u
            d += 1
        return touched
