"""Array-native propagation core: the event loop over dense int ids.

A faithful port of :class:`~repro.bgp.propagation.PropagationSimulator`
that replaces every per-event Python object with flat per-AS state:

* ASNs are interned to dense ids ``0..n-1`` in ascending-ASN order, so
  id ordering is ASN ordering and the event engine's ASN-based
  determinism (sorted withdrawal fan-out, sorted export plans, queue
  admission order) carries over unchanged.
* A route candidate is ``(packed key, path tuple, relationship code)``
  instead of a :class:`~repro.bgp.messages.Route`; the decision key
  ``(LOCAL_PREF, -path length, -sender ASN)`` packs into a single int
  (monotonic for arbitrary LOCAL_PREF values), so the hot loop's route
  comparisons are int comparisons and the inner loop allocates nothing
  beyond the occasional path tuple on best-route change.
* Best-route state lives in preallocated parallel lists indexed by id
  (best sender, packed key, path, learned class), reset between
  prefixes via a touched list.

Route **attributes** are never computed during propagation.  Two routes
at the same AS are equal iff their ``(sender, AS path)`` pairs are
equal — attributes are a pure function of the export chain, by
induction from the immutable origin route — so best-route *change*
detection needs only the interned state.  Actual routes are
materialized once per prefix at quiescence by the shared chain-walk
materializer, which replays the real per-edge export/import transforms
and therefore reproduces the event engine's routes bit for bit.

The port preserves event-loop semantics exactly — same queue
discipline, same incremental decision shortcuts, same withdrawal
ordering — so its ``events`` count and converged state are identical
to the event backend on *arbitrary* policies (including TE overrides,
export relaxations, siblings and custom LOCAL_PREF hooks, which are
consulted per import exactly when the event engine would consult
them).  The golden suite pins this equivalence.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.backends.base import (
    PropagationBackend,
    ResolutionForest,
    install_converged_routes,
    speakers_without_sessions,
)
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.results import ConvergenceError, PropagationResult

#: Learned-relationship classes, in the event engine's plan order.
#: Index 0 is the locally-originated class (learned relationship None).
_LEARNED_CLASSES: Tuple[Optional[Relationship], ...] = (
    None,
    Relationship.P2C,
    Relationship.C2P,
    Relationship.P2P,
    Relationship.SIBLING,
)
_CODE_OF_REL = {rel: code for code, rel in enumerate(_LEARNED_CLASSES)}

_EMPTY_SET: frozenset = frozenset()

#: best_sender sentinels.
_NO_ROUTE = -1
_LOCAL_ROUTE = -2


class ArrayBackend(PropagationBackend):
    """Allocation-light event propagation over interned arrays."""

    name = "array"
    supports_resolution = True

    def __init__(self, graph, policies=None, max_events_per_prefix=200_000, keep_ribs_for=None, record_resolution=False):
        super().__init__(graph, policies, max_events_per_prefix, keep_ribs_for, record_resolution)
        self._asns: List[int] = graph.ases  # sorted ascending
        self._id_of: Dict[int, int] = {asn: i for i, asn in enumerate(self._asns)}
        n = len(self._asns)
        # Packing factors: path length < _LENF, sender id < _SENF.  Hop
        # uniqueness (the loop check) bounds path length by n.
        self._lenf = n + 2
        self._senf = n + 1
        # Per-AFI interned export plans and LOCAL_PREF tables (lazy).
        self._plans: Dict[AFI, List] = {}
        self._lp_tables: Dict[AFI, List] = {}
        # One policy object per id; shared with the result speakers so
        # per-import policy consults see exactly what the event engine's
        # speakers would.
        self._policy_of: List[RoutingPolicy] = [
            self.policies.get(asn) or RoutingPolicy(asn=asn) for asn in self._asns
        ]
        for asn, policy in zip(self._asns, self._policy_of):
            self.policies.setdefault(asn, policy)
        # Per-prefix propagation state, reused across prefixes and reset
        # through the touched list.
        self._cand: List[Optional[dict]] = [None] * n
        self._best_sender = [_NO_ROUTE] * n
        self._best_key = [0] * n
        self._best_path: List[Optional[Tuple[int, ...]]] = [None] * n
        self._best_rel = [0] * n
        self._announced: List[Optional[set]] = [None] * n
        self._dirty = bytearray(n)
        self._queued = bytearray(n)

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _build_plane(self, afi: AFI) -> None:
        """Intern export plans and import LOCAL_PREF tables for one AFI.

        Mirrors ``PropagationSimulator._build_export_plans`` (policy
        ``export_allowed`` consulted once per learned class × neighbour)
        and ``BGPSpeaker._build_import_defaults`` (policies with custom
        import hooks or TE overrides are consulted per import instead of
        being snapshotted into a table).
        """
        id_of = self._id_of
        plans: List = [None] * len(self._asns)
        lp_tables: List = [None] * len(self._asns)
        for x, asn in enumerate(self._asns):
            policy = self._policy_of[x]
            neighbors = self.graph.oriented_neighbors(asn, afi)
            if neighbors:
                per_learned = []
                for learned in _LEARNED_CLASSES:
                    allowed = tuple(
                        (id_of[n], _CODE_OF_REL[rel.inverse])
                        for n, rel in neighbors
                        if policy.export_allowed(learned, rel, n, afi)
                    )
                    per_learned.append(
                        (allowed, frozenset(pair[0] for pair in allowed))
                    )
                plans[x] = per_learned
            cls = type(policy)
            consult = (
                cls.local_pref_for is not RoutingPolicy.local_pref_for
                or bool(policy.te_overrides)
            )
            if not consult:
                scheme = policy.local_pref
                lp_tables[x] = (
                    0,  # unused: code 0 is the locally-originated class
                    scheme.for_relationship(Relationship.P2C),
                    scheme.for_relationship(Relationship.C2P),
                    scheme.for_relationship(Relationship.P2P),
                    scheme.for_relationship(Relationship.SIBLING),
                )
        self._plans[afi] = plans
        self._lp_tables[afi] = lp_tables

    def _plane(self, afi: AFI):
        if afi not in self._plans:
            self._build_plane(afi)
        return self._plans[afi], self._lp_tables[afi]

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        keep = self.keep_ribs_for
        # keep == empty set means "materialize nothing" (the quotient-graph
        # path: the forest carries the decisions out) — skip building
        # speakers that would only ever hold empty RIBs.
        speakers = (
            speakers_without_sessions(self.graph, self.policies)
            if keep is None or keep
            else {}
        )
        asns = self._asns
        id_of = self._id_of
        best_sender = self._best_sender
        best_rel = self._best_rel
        # Pruned mode: interned (asn, id) pairs so the per-prefix target
        # scan is O(|keep|), not O(touched) x a list-membership probe.
        keep_ids = (
            None
            if keep is None
            else [(asn, id_of[asn]) for asn in keep if asn in id_of]
        )
        reachable_counts: Dict[Prefix, int] = {}
        forest = (
            ResolutionForest(asns, id_of, _LEARNED_CLASSES)
            if self.record_resolution
            else None
        )

        def resolve(asn: int):
            i = id_of[asn]
            return asns[best_sender[i]], _LEARNED_CLASSES[best_rel[i]]

        total_events = 0
        for prefix, origin_asn in origins.items():
            if origin_asn not in id_of:
                raise KeyError(f"origin AS{origin_asn} is not in the topology")
            if not self.graph.node(origin_asn).supports(prefix.afi):
                raise ValueError(
                    f"AS{origin_asn} does not participate in {prefix.afi} "
                    f"but originates {prefix}"
                )
            events, touched = self._propagate_prefix(prefix, id_of[origin_asn])
            total_events += events
            routed = [i for i in touched if best_sender[i] != _NO_ROUTE]
            reachable_counts[prefix] = len(routed)
            if keep_ids is None:
                targets = [asns[i] for i in routed]
            else:
                targets = [
                    asn for asn, i in keep_ids if best_sender[i] != _NO_ROUTE
                ]
            install_converged_routes(
                speakers, prefix, origin_asn, targets, resolve
            )
            if forest is not None:
                # Column snapshot before _reset wipes the state.
                forest.record(prefix, best_sender, best_rel, len(routed))
            self._reset(touched)
        return PropagationResult(
            speakers=speakers,
            origins=dict(origins),
            events=total_events,
            reachable_counts=reachable_counts,
            resolution=forest,
        )

    def _reset(self, touched: List[int]) -> None:
        cand = self._cand
        best_sender = self._best_sender
        best_path = self._best_path
        best_rel = self._best_rel
        announced = self._announced
        dirty = self._dirty
        for i in touched:
            state = cand[i]
            if state is not None:
                state.clear()
            state = announced[i]
            if state is not None:
                state.clear()
            best_sender[i] = _NO_ROUTE
            best_path[i] = None
            best_rel[i] = 0
            dirty[i] = 0

    # ------------------------------------------------------------------
    # the hot loop
    # ------------------------------------------------------------------
    def _propagate_prefix(self, prefix: Prefix, origin: int) -> Tuple[int, List[int]]:
        """Event-faithful propagation of one prefix over interned state.

        Keep in lockstep with ``PropagationSimulator._propagate_prefix``
        (queue discipline, withdrawal ordering, incremental decision
        shortcuts of ``BGPSpeaker.import_route``/``withdraw``) — the
        golden suite asserts identical event counts and routes.
        """
        plans, lp_tables = self._plane(prefix.afi)
        asns = self._asns
        cand = self._cand
        best_sender = self._best_sender
        best_key = self._best_key
        best_path = self._best_path
        best_rel = self._best_rel
        announced = self._announced
        dirty = self._dirty
        queued = self._queued
        policy_of = self._policy_of
        lenf = self._lenf
        senf = self._senf
        max_events = self.max_events_per_prefix

        best_sender[origin] = _LOCAL_ROUTE
        best_path[origin] = (origin,)
        best_rel[origin] = 0
        dirty[origin] = 1
        touched = [origin]

        queue = deque((origin,))
        queued[origin] = 1
        events = 0
        while queue:
            events += 1
            if events > max_events:
                raise ConvergenceError(
                    f"prefix {prefix} did not converge within "
                    f"{max_events} events"
                )
            x = queue.popleft()
            queued[x] = 0
            bs = best_sender[x]
            if bs == _NO_ROUTE:
                exportable: Tuple = ()
                exportable_set: frozenset = _EMPTY_SET
                learned_from = _NO_ROUTE
            else:
                plan = plans[x]
                if plan is None:
                    exportable, exportable_set = (), _EMPTY_SET
                else:
                    exportable, exportable_set = plan[best_rel[x]]
                learned_from = bs if bs >= 0 else _NO_ROUTE
            sent = announced[x]
            if sent:
                stale = sent - exportable_set
                if learned_from >= 0 and learned_from in sent:
                    stale.add(learned_from)
                if stale:
                    for nb in sorted(stale):
                        sent.discard(nb)
                        # --- BGPSpeaker.withdraw over interned state ---
                        holders = cand[nb]
                        if not holders or x not in holders:
                            continue
                        del holders[x]
                        nb_best = best_sender[nb]
                        if nb_best != x:
                            # Withdrawn route was not the best (or the
                            # best is local): nothing changes.
                            continue
                        old_path = best_path[nb]
                        if holders:
                            new_sender = None
                            for s, entry in holders.items():
                                if new_sender is None or entry[0] > k:
                                    new_sender = s
                                    k = entry[0]
                            k, p, r = holders[new_sender]
                            best_sender[nb] = new_sender
                            best_key[nb] = k
                            best_path[nb] = p
                            best_rel[nb] = r
                            changed = new_sender != x or p != old_path
                        else:
                            best_sender[nb] = _NO_ROUTE
                            best_path[nb] = None
                            best_rel[nb] = 0
                            changed = True
                        if changed:
                            if not queued[nb]:
                                queue.append(nb)
                                queued[nb] = 1
            if exportable:
                bp = best_path[x]
                path = bp if bs == _LOCAL_ROUTE else (x,) + bp
                plen = len(path)
                if sent is None:
                    sent = announced[x] = set()
                for nb, recv_rel in exportable:
                    if nb == learned_from:
                        continue
                    sent.add(nb)
                    # --- BGPSpeaker.import_route over interned state ---
                    if nb in path:  # loop prevention, before any state write
                        continue
                    lp_table = lp_tables[nb]
                    if lp_table is None:
                        lp, _override = policy_of[nb].local_pref_for(
                            asns[x], _LEARNED_CLASSES[recv_rel], prefix
                        )
                    else:
                        lp = lp_table[recv_rel]
                    key = ((lp * lenf) + (lenf - 1 - plen)) * senf + (senf - 1 - x)
                    holders = cand[nb]
                    if holders is None:
                        holders = cand[nb] = {}
                    if not dirty[nb]:
                        dirty[nb] = 1
                        touched.append(nb)
                    holders[x] = (key, path, recv_rel)
                    nb_best = best_sender[nb]
                    if nb_best == _NO_ROUTE:
                        best_sender[nb] = x
                        best_key[nb] = key
                        best_path[nb] = path
                        best_rel[nb] = recv_rel
                        changed = True
                    elif nb_best == _LOCAL_ROUTE:
                        changed = False
                    elif nb_best == x:
                        # The previous best came from this sender; the
                        # replacement may be worse — full decision.
                        old_path = best_path[nb]
                        new_sender = None
                        for s, entry in holders.items():
                            if new_sender is None or entry[0] > new_key:
                                new_sender = s
                                new_key = entry[0]
                        k, p, r = holders[new_sender]
                        best_sender[nb] = new_sender
                        best_key[nb] = k
                        best_path[nb] = p
                        best_rel[nb] = r
                        changed = new_sender != x or p != old_path
                    elif key > best_key[nb]:
                        best_sender[nb] = x
                        best_key[nb] = key
                        best_path[nb] = path
                        best_rel[nb] = recv_rel
                        changed = True
                    else:
                        changed = False
                    if changed and not queued[nb]:
                        queue.append(nb)
                        queued[nb] = 1
        return events, touched
