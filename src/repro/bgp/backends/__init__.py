"""Pluggable propagation backends.

Three interchangeable implementations of route propagation sit behind
the :class:`~repro.bgp.backends.base.PropagationBackend` interface:

=============  ====================================================
``event``      The event-driven simulator — valid for every policy
               configuration; the oracle the others validate against.
``equilibrium``  Direct Gao-Rexford fixed-point computation — orders of
               magnitude faster, valid only for vanilla valley-free
               policies (explicit applicability check).
``array``      The event loop over interned int ids and flat arrays —
               same events, same routes, far less allocation.
=============  ====================================================

Callers normally go through :class:`~repro.bgp.engine.PropagationEngine`
(which adds ``auto`` selection, equilibrium→event fallback and parallel
batching) rather than instantiating backends directly.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.bgp.backends.arraycore import ArrayBackend
from repro.bgp.backends.base import (
    BackendNotApplicable,
    PropagationBackend,
    imported_route,
    install_converged_routes,
    speakers_without_sessions,
)
from repro.bgp.backends.equilibrium import EquilibriumBackend
from repro.bgp.backends.event import EventBackend

#: Concrete backends by engine-config name.  ``auto`` is not a backend:
#: the engine resolves it to one of these per run.
BACKENDS: Dict[str, Type[PropagationBackend]] = {
    EventBackend.name: EventBackend,
    EquilibriumBackend.name: EquilibriumBackend,
    ArrayBackend.name: ArrayBackend,
}

#: Valid values of the ``propagation.engine`` config field.
ENGINE_CHOICES = ("event", "equilibrium", "array", "auto")

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BackendNotApplicable",
    "ENGINE_CHOICES",
    "EquilibriumBackend",
    "EventBackend",
    "PropagationBackend",
    "imported_route",
    "install_converged_routes",
    "speakers_without_sessions",
]
