"""The event-driven backend — a thin wrapper around the simulator.

:class:`~repro.bgp.propagation.PropagationSimulator` predates the
backend interface and remains directly usable; this adapter gives it a
:class:`~repro.bgp.backends.base.PropagationBackend` face so the engine
can treat all backends uniformly.  It is the oracle the other backends
are cross-validated against and the only backend valid for *every*
policy configuration.
"""

from __future__ import annotations

from typing import Mapping

from repro.bgp.backends.base import PropagationBackend
from repro.bgp.prefixes import Prefix
from repro.bgp.propagation import PropagationSimulator
from repro.bgp.results import PropagationResult


class EventBackend(PropagationBackend):
    """Event-driven propagation (see :mod:`repro.bgp.propagation`)."""

    name = "event"

    def __init__(self, graph, policies=None, max_events_per_prefix=200_000, keep_ribs_for=None, record_resolution=False):
        # ``record_resolution`` is accepted for constructor uniformity
        # but never honoured: the simulator's converged state *is* the
        # materialized RIBs (``supports_resolution`` stays False).
        super().__init__(graph, policies, max_events_per_prefix, keep_ribs_for, record_resolution)
        self._simulator = PropagationSimulator(
            graph,
            policies,
            max_events_per_prefix=max_events_per_prefix,
            keep_ribs_for=keep_ribs_for,
        )

    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        return self._simulator.run(origins)
