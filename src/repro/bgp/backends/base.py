"""The propagation-backend interface and shared materialization helpers.

A *backend* turns ``(graph, policies, origins)`` into a converged
:class:`~repro.bgp.results.PropagationResult`.  Three implementations
exist:

``event``
    The event-driven :class:`~repro.bgp.propagation.PropagationSimulator`
    — the oracle.  Valid for **every** policy configuration; also the
    only backend that populates Adj-RIB-In state.
``equilibrium``
    Direct fixed-point computation by preference-ordered BFS over the
    customer → peer → provider route classes.  Only valid for vanilla
    Gao-Rexford policies (:meth:`PropagationBackend.inapplicable_reason`
    is the explicit applicability check); the engine falls back to
    ``event`` otherwise.
``array``
    A faithful port of the event loop over dense integer ids and flat
    per-AS arrays — bit-identical to ``event`` (same event ordering,
    same event *count*) for arbitrary policies, with routes
    materialized once at quiescence instead of once per event.

Contract (pinned by the golden cross-validation suite): for the same
inputs every backend produces identical best routes (Loc-RIB contents,
attribute for attribute), identical ``reachable_counts`` and — in
pruned mode — identical kept state.  ``events`` is part of the
contract only between ``event`` and ``array``; the equilibrium solver
reports ``0``.  Adj-RIB-In state is an ``event``-only artifact: the
solver backends leave it empty (nothing downstream of propagation
reads it — collectors snapshot Loc-RIBs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import Route
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.results import PropagationResult
from repro.bgp.router import BGPSpeaker
from repro.topology.graph import ASGraph


class ResolutionForest:
    """Converged best-sender forest of a solver run, in column form.

    The quotient-graph path (:mod:`repro.topology.compress`) needs the
    compressed run's *decisions* — per prefix, who each reached AS
    learned its best route from — without paying for any
    :class:`~repro.bgp.messages.Route` materialization.  Solver backends
    already hold exactly that as dense per-AS columns; this class
    snapshots those columns per prefix so they survive the backend's
    cross-prefix state reset.

    Recording is two C-level ``array`` copies per prefix (no per-AS
    Python work), which is what makes compressed propagation cheaper
    than the uncompressed run it replaces: a dict-of-tuples forest at
    100k ASes costs more to build than the solver run itself.

    Shared across prefixes: the backend's interning tables — ``asns``
    (column id → ASN, ascending), ``id_of`` (ASN → column id) and
    ``rel_of_code`` (learned-class code → :class:`Relationship`,
    indexable by int; a dict or tuple both work).  Sender-column
    sentinels are the solver convention: ``-1`` no route, ``-2``
    locally originated.
    """

    #: Sender-column sentinels (shared by every solver backend).
    NO_ROUTE = -1
    LOCAL = -2

    __slots__ = ("_asns", "_id_of", "_rel_of_code", "_senders", "_relcodes", "_counts")

    def __init__(
        self,
        asns: Sequence[int],
        id_of: Mapping[int, int],
        rel_of_code: Mapping[int, Relationship],
    ) -> None:
        self._asns = asns
        self._id_of = id_of
        self._rel_of_code = rel_of_code
        self._senders: Dict[Prefix, array] = {}
        self._relcodes: Dict[Prefix, array] = {}
        self._counts: Dict[Prefix, int] = {}

    def record(
        self,
        prefix: Prefix,
        senders: Sequence[int],
        relcodes: Sequence[int],
        reached_count: int,
    ) -> None:
        """Snapshot the solver's per-AS columns for ``prefix``.

        Call *before* the backend resets its per-prefix state.  The
        columns are copied into compact typed arrays (4 + 1 bytes per
        AS), so a 128-prefix run over 100k ASes carries ~64 MB, not a
        quarter-billion boxed tuples.
        """
        self._senders[prefix] = array("i", senders)
        self._relcodes[prefix] = array("b", relcodes)
        self._counts[prefix] = reached_count

    def prefixes(self) -> Iterable[Prefix]:
        return self._senders.keys()

    def reached_count(self, prefix: Prefix) -> int:
        """How many ASes hold a route for ``prefix`` (origin included)."""
        return self._counts[prefix]

    def is_reached(self, prefix: Prefix, asn: int) -> bool:
        return self._senders[prefix][self._id_of[asn]] != self.NO_ROUTE

    def reached(self, prefix: Prefix) -> Iterable[int]:
        """ASNs holding a route for ``prefix``, ascending (column scan)."""
        senders = self._senders[prefix]
        no_route = self.NO_ROUTE
        for i, asn in enumerate(self._asns):
            if senders[i] != no_route:
                yield asn

    def resolve(self, prefix: Prefix, asn: int) -> Tuple[int, Optional[Relationship]]:
        """``(best sender ASN, learned relationship)``; origin → ``(asn, None)``."""
        return self.resolver(prefix)(asn)

    def resolver(self, prefix: Prefix) -> Callable[[int], Tuple[int, Optional[Relationship]]]:
        """A per-prefix resolve closure with the columns pre-bound.

        The chain-walk materializer calls resolve once per chain hop;
        binding the column lookups once per prefix keeps that hot path
        free of repeated dict indexing on ``prefix``.
        """
        senders = self._senders[prefix]
        relcodes = self._relcodes[prefix]
        asns = self._asns
        id_of = self._id_of
        rel_of_code = self._rel_of_code
        local = self.LOCAL

        def resolve(asn: int) -> Tuple[int, Optional[Relationship]]:
            i = id_of[asn]
            sender = senders[i]
            if sender == local:
                return asn, None
            return asns[sender], rel_of_code[relcodes[i]]

        return resolve


class BackendNotApplicable(RuntimeError):
    """A backend was asked to run a configuration it cannot solve.

    Raised by :meth:`PropagationBackend.run` when the backend's
    applicability check fails; carries the human-readable reason.  The
    engine checks applicability *before* instantiating a backend and
    falls back to ``event``, so this surfaces only on direct use.
    """


class PropagationBackend(ABC):
    """One way of computing a converged :class:`PropagationResult`.

    Backends share the constructor signature of the event simulator so
    the engine can instantiate any of them interchangeably.  A backend
    instance is single-shot per :meth:`run` call semantics-wise: every
    call starts from a clean converged-state computation (the event
    simulator additionally supports incremental re-runs on one
    instance, but the engine never relies on that).
    """

    #: Engine-config name of the backend (``event``/``equilibrium``/...).
    name: str = ""

    #: Whether the backend honours ``record_resolution`` — i.e. it holds
    #: the converged best-sender forest as interned state and can attach
    #: it to the result without materializing any routes.  The event
    #: simulator cannot (its state *is* the materialized RIBs); the
    #: quotient-graph engine path checks this flag to decide between a
    #: forest-carrying pruned run and a full-RIB run.
    supports_resolution: bool = False

    def __init__(
        self,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]] = None,
        max_events_per_prefix: int = 200_000,
        keep_ribs_for: Optional[Iterable[int]] = None,
        record_resolution: bool = False,
    ) -> None:
        self.graph = graph
        self.policies = dict(policies) if policies is not None else {}
        self.max_events_per_prefix = max_events_per_prefix
        self.keep_ribs_for = (
            set(keep_ribs_for) if keep_ribs_for is not None else None
        )
        self.record_resolution = record_resolution

    @classmethod
    def inapplicable_reason(
        cls,
        graph: ASGraph,
        policies: Optional[Mapping[int, RoutingPolicy]],
        afi: AFI,
    ) -> Optional[str]:
        """Why this backend cannot solve the given plane (``None`` = it can).

        The base implementation accepts everything; restricted backends
        (the equilibrium solver) override it.  The engine consults this
        for ``auto`` selection and for the documented
        equilibrium-to-event fallback.
        """
        return None

    @abstractmethod
    def run(self, origins: Mapping[Prefix, int]) -> PropagationResult:
        """Originate ``origins`` and return the converged result."""


# ----------------------------------------------------------------------
# shared converged-route materialization
# ----------------------------------------------------------------------
def imported_route(
    speaker: BGPSpeaker,
    prefix: Prefix,
    sender: int,
    relationship: Relationship,
    attributes: PathAttributes,
) -> Route:
    """The route ``speaker`` installs after import processing.

    Replicates the attribute transformation of
    :meth:`BGPSpeaker.import_route` (LOCAL_PREF assignment, community
    tagging) without any RIB side effects — keep the two in sync; the
    golden cross-backend suite pins them against each other.  Always
    consults the policy hooks: for vanilla policies that is exactly
    what the event loop's defaults cache snapshots, and for custom
    policies it is what the event loop does per route anyway.
    """
    policy = speaker.policy
    local_pref, override = policy.local_pref_for(sender, relationship, prefix)
    added = tuple(policy.import_communities(relationship, override))
    if added:
        attributes = attributes.add_communities(added)
    attributes = PathAttributes(
        as_path=attributes.as_path,
        local_pref=local_pref,
        med=attributes.med,
        origin=attributes.origin,
        next_hop=attributes.next_hop,
        communities=attributes.communities,
    )
    return Route(
        prefix=prefix,
        holder=speaker.asn,
        attributes=attributes,
        learned_from=sender,
        learned_relationship=relationship,
    )


def install_converged_routes(
    speakers: Dict[int, BGPSpeaker],
    prefix: Prefix,
    origin_asn: int,
    targets: Iterable[int],
    resolve: Callable[[int], Tuple[int, Relationship]],
) -> None:
    """Materialize and install the converged best routes for one prefix.

    ``resolve(asn)`` returns ``(best_sender, learned_relationship)`` for
    any AS that holds a (non-local) route — the converged best-sender
    forest a solver backend computed.  Routes are rebuilt by walking
    each target's sender chain down to the origin and applying the
    *real* export/import transformations edge by edge (the sender's
    :meth:`BGPSpeaker.exported_attributes`, then :func:`imported_route`
    at the receiver), so attributes — AS path, LOCAL_PREF, communities
    — are bit-identical to what the event loop would have installed.
    Intermediate chain routes are memoized per prefix; only ``targets``
    are actually installed (pruned mode passes the kept ASes).
    """
    routes: Dict[int, Route] = {}

    def route_for(asn: int) -> Route:
        route = routes.get(asn)
        if route is not None:
            return route
        chain: List[int] = []
        node = asn
        while True:
            if node == origin_asn:
                base = routes.get(node)
                if base is None:
                    base = routes[node] = Route.originate(prefix, node)
                break
            chain.append(node)
            node = resolve(node)[0]
            base = routes.get(node)
            if base is not None:
                break
        for hop in reversed(chain):
            sender, relationship = resolve(hop)
            exported = speakers[sender].exported_attributes(routes[sender])
            routes[hop] = imported_route(
                speakers[hop], prefix, sender, relationship, exported
            )
        return routes[asn]

    for target in targets:
        if target == origin_asn:
            # Exactly like the event path: the origin keeps its locally
            # originated route (Loc-RIB entry + local-routes table).
            speakers[target].originate(prefix)
        else:
            speakers[target].loc_rib._routes[prefix] = route_for(target)


def speakers_without_sessions(
    graph: ASGraph, policies: Mapping[int, RoutingPolicy]
) -> Dict[int, BGPSpeaker]:
    """One session-less :class:`BGPSpeaker` per AS in the graph.

    Solver backends compute routing over interned adjacency structures
    and only need speakers as Loc-RIB holders for the result; skipping
    session construction keeps result assembly O(ASes) instead of
    O(links).
    """
    return {asn: BGPSpeaker(asn, policies.get(asn)) for asn in graph.ases}
