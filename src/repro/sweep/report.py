"""Cross-scenario sweep reports: delta tables and seed-variance flags.

A sweep produces one Section-3 report (and one Figure-2 improvement
summary) per grid cell; this module aggregates them into a single
cross-scenario report:

* a **delta table** per metric — min, max, spread and the per-scenario
  values — separating the metrics that actually respond to the swept
  axes from the ones that stay constant,
* **seed-variance statistics** — scenarios that differ *only* in a seed
  axis (``seed`` or any ``*.seed`` field) are grouped; every metric that
  varies within such a group is flagged (at fixed configuration those
  numbers are sampling noise) and reported as a **t-based 95%
  confidence interval** (mean ± t·s/√n across the repeated-seed cells),
  so a claim like "metric X responds to axis Y" can be checked against
  the interval instead of a yes/no flag, and
* the **cache accounting** of the execution (computed vs cached stage
  invocations, duplicate-compute check).

Reports serialize as JSON (``sort_keys=True`` plus a ``schema_version``
field, so golden files and cross-run diffs stay stable) and as a
markdown document for humans.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import write_json_report as _write_json_report
from repro.sweep.executor import ScenarioResult, SweepResult
from repro.sweep.grid import SweepGrid

#: Bump when the sweep report JSON layout changes incompatibly.
#: v2: seed-variance groups gained per-metric t-based confidence
#: intervals (``metrics`` mapping inside each group).
SWEEP_REPORT_SCHEMA_VERSION = 2

#: Two-sided 95% Student-t critical values by degrees of freedom.
#: Seed groups are small (a handful of repeats), exactly where the
#: normal approximation is badly anti-conservative — hence t.
_T_95: Dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(df: int) -> float:
    """The two-sided 95% t quantile for ``df`` degrees of freedom.

    Between table rows the quantile of the largest tabulated df *not
    exceeding* the request is used — t decreases in df, so rounding the
    df down rounds the quantile (and every interval built from it)
    **up**: never anti-conservative.  df beyond the table keeps the
    df=120 value (1.980, a hair above the 1.960 normal tail).
    """
    if df < 1:
        raise ValueError("confidence intervals need at least 2 samples")
    if df in _T_95:
        return _T_95[df]
    floor = max(bound for bound in _T_95 if bound <= df)
    return _T_95[floor]


def confidence_interval(values: Sequence[float]) -> Dict[str, float]:
    """t-based mean ± 95% CI of one metric across repeated-seed cells.

    Returns ``{n, mean, stddev, ci95_half_width, ci95_low, ci95_high}``
    with the *sample* standard deviation (n-1 denominator).  Needs at
    least two values — one seed is a point estimate, not a sample.
    """
    n = len(values)
    if n < 2:
        raise ValueError("confidence intervals need at least 2 samples")
    mean = sum(values) / n
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    stddev = variance ** 0.5
    half_width = t_critical_95(n - 1) * stddev / n ** 0.5
    return {
        "n": n,
        "mean": mean,
        "stddev": stddev,
        "ci95_half_width": half_width,
        "ci95_low": mean - half_width,
        "ci95_high": mean + half_width,
    }


def scenario_metrics(result: ScenarioResult) -> Dict[str, float]:
    """Flat metric dictionary of one scenario (``section3.*`` numbers
    plus the ``correction.*`` improvement summary)."""
    metrics: Dict[str, float] = {}
    if result.section3:
        metrics.update(result.section3)
    if result.correction:
        improvement = result.correction.get("improvement", {})
        for key, value in improvement.items():
            metrics[f"correction.{key}"] = value
    return metrics


def _is_seed_field(field: str) -> bool:
    return field == "seed" or field.endswith(".seed")


def _delta_table(
    ok_results: Sequence[ScenarioResult],
) -> Dict[str, Dict[str, object]]:
    """metric -> {min, max, spread, values-per-scenario}."""
    per_scenario = {r.scenario_id: scenario_metrics(r) for r in ok_results}
    metric_names = sorted({name for m in per_scenario.values() for name in m})
    table: Dict[str, Dict[str, object]] = {}
    for name in metric_names:
        values = {
            scenario_id: metrics[name]
            for scenario_id, metrics in per_scenario.items()
            if name in metrics
        }
        if not values:
            continue
        low, high = min(values.values()), max(values.values())
        table[name] = {
            "min": low,
            "max": high,
            "spread": high - low,
            "values": values,
        }
    return table


def _seed_variance(
    ok_results: Sequence[ScenarioResult],
) -> Dict[str, object]:
    """Group scenarios that differ only in seed axes; flag noisy metrics."""
    seed_fields = sorted(
        {f for r in ok_results for f in r.overrides if _is_seed_field(f)}
    )
    groups: Dict[Tuple[Tuple[str, object], ...], List[ScenarioResult]] = {}
    for result in ok_results:
        fixed = tuple(
            (f, v) for f, v in sorted(result.overrides.items()) if not _is_seed_field(f)
        )
        groups.setdefault(fixed, []).append(result)

    reported: List[Dict[str, object]] = []
    varying_union: set = set()
    for fixed, members in sorted(groups.items(), key=lambda item: repr(item[0])):
        if len(members) < 2:
            continue
        metric_sets = [scenario_metrics(m) for m in members]
        names = sorted(set().union(*metric_sets))
        varying = [
            name
            for name in names
            if len({metrics.get(name) for metrics in metric_sets}) > 1
        ]
        varying_union.update(varying)
        intervals: Dict[str, Dict[str, float]] = {}
        for name in names:
            values = [
                metrics[name]
                for metrics in metric_sets
                if isinstance(metrics.get(name), (int, float))
            ]
            if len(values) >= 2:
                intervals[name] = confidence_interval(values)
        reported.append(
            {
                "fixed": {field: value for field, value in fixed},
                "scenario_ids": [m.scenario_id for m in members],
                "varying_metrics": varying,
                "stable_metric_count": len(names) - len(varying),
                "metrics": intervals,
            }
        )
    return {
        "seed_fields": seed_fields,
        "groups": reported,
        "varying_metrics": sorted(varying_union),
    }


def build_report(
    sweep: SweepResult, grid: Optional[SweepGrid] = None
) -> Dict[str, object]:
    """The complete cross-scenario report of one sweep execution."""
    ok_results = sweep.ok()
    report: Dict[str, object] = {
        "schema_version": SWEEP_REPORT_SCHEMA_VERSION,
        "targets": list(sweep.targets),
        "executor": sweep.executor,
        "cache_dir": sweep.cache_dir,
        "seconds": round(sweep.seconds, 4),
        "grid": grid.spec_dict() if grid is not None else None,
        "waves": sweep.waves,
        "cache": {
            **sweep.cache_counters(),
            "total_stage_invocations": sweep.plan.total_stage_invocations(),
            "distinct_stage_invocations": sweep.plan.distinct_stage_invocations(),
            "duplicate_computes": sweep.duplicate_computes(),
            "fully_cached": sweep.fully_cached(),
            "sharing": sweep.plan.sharing_summary(),
        },
        "scenarios": {
            result.scenario_id: {
                "overrides": result.overrides,
                "status": result.status,
                "error": result.error,
                "seconds": round(result.seconds, 4),
                "computed_stages": sorted(result.computed_stages()),
                "cached_stages": sorted(
                    s for s, st in result.stage_statuses.items() if st == "cached"
                ),
                "section3": result.section3,
                "correction": result.correction,
            }
            for result in sweep.results
        },
        "deltas": _delta_table(ok_results),
        "seed_variance": _seed_variance(ok_results),
        "failures": {r.scenario_id: r.error for r in sweep.failed()},
    }
    return report


def write_json_report(report: Dict[str, object], path: Union[str, Path]) -> None:
    """Write a sweep report through the repository's shared stable
    writer (:func:`repro.analysis.report.write_json_report`); the
    report already embeds its own ``schema_version``."""
    _write_json_report(report, path)


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_markdown(report: Dict[str, object]) -> str:
    """A human-readable markdown rendering of :func:`build_report`."""
    lines: List[str] = ["# Sweep report", ""]
    cache = report["cache"]
    scenarios = report["scenarios"]
    lines.append(
        f"{len(scenarios)} scenarios over targets "
        f"`{', '.join(report['targets'])}` in {report['seconds']}s "
        f"(executor `{report['executor']}`)."
    )
    lines.append(
        f"Stage invocations: {cache['computed']} computed, "
        f"{cache['cached']} cached "
        f"({cache['distinct_stage_invocations']} distinct of "
        f"{cache['total_stage_invocations']} total)."
    )
    if cache["duplicate_computes"] and report["cache_dir"] is not None:
        # A cache-less sweep recomputes shared fingerprints per cell by
        # design; only a cached sweep promises exactly-once.
        lines.append(
            f"**Warning:** {len(cache['duplicate_computes'])} fingerprints "
            "were computed more than once (a scenario failure or a "
            "cache-budget eviction broke the exactly-once schedule)."
        )
    if cache["fully_cached"]:
        lines.append("Fully cached: nothing was recomputed.")
    lines.append("")

    lines.append("## Scenarios")
    lines.append("")
    lines.append("| scenario | status | computed | cached | seconds |")
    lines.append("|---|---|---:|---:|---:|")
    for scenario_id, data in scenarios.items():
        lines.append(
            f"| `{scenario_id}` | {data['status']} "
            f"| {len(data['computed_stages'])} | {len(data['cached_stages'])} "
            f"| {data['seconds']} |"
        )
    lines.append("")

    deltas: Dict[str, Dict[str, object]] = report["deltas"]
    varying = {name: row for name, row in deltas.items() if row["spread"] != 0}
    constant = len(deltas) - len(varying)
    lines.append("## Metric deltas across scenarios")
    lines.append("")
    if varying:
        lines.append("| metric | min | max | spread |")
        lines.append("|---|---:|---:|---:|")
        for name, row in varying.items():
            lines.append(
                f"| `{name}` | {_format_value(row['min'])} "
                f"| {_format_value(row['max'])} | {_format_value(row['spread'])} |"
            )
        lines.append("")
        lines.append("Per-scenario values of the varying metrics:")
        lines.append("")
        ids = list(scenarios)
        lines.append("| metric | " + " | ".join(f"`{i}`" for i in ids) + " |")
        lines.append("|---|" + "---:|" * len(ids))
        for name, row in varying.items():
            cells = [
                _format_value(row["values"].get(scenario_id, ""))
                for scenario_id in ids
            ]
            lines.append(f"| `{name}` | " + " | ".join(cells) + " |")
    else:
        lines.append("No metric varies across the grid.")
    if constant:
        lines.append("")
        lines.append(f"{constant} metrics are identical across every scenario.")
    lines.append("")

    variance = report["seed_variance"]
    lines.append("## Seed variance at fixed configuration")
    lines.append("")
    if not variance["groups"]:
        lines.append(
            "No scenario group differs only in a seed axis — nothing to flag."
        )
    elif not variance["varying_metrics"]:
        lines.append(
            "Every metric is identical across seeds at fixed configuration."
        )
    else:
        lines.append(
            "Metrics that change when **only the seed** changes are sampling "
            "noise; across the repeated-seed cells they are estimated as "
            "t-based mean ± 95% CI:"
        )
        for group in variance["groups"]:
            if not group["varying_metrics"]:
                continue
            fixed = (
                ", ".join(
                    f"{field}={_format_value(value)}"
                    for field, value in group["fixed"].items()
                )
                or "(base config)"
            )
            lines.append("")
            lines.append(f"At {fixed} ({len(group['scenario_ids'])} seeds):")
            lines.append("")
            lines.append("| metric | n | mean | ± 95% CI | interval |")
            lines.append("|---|---:|---:|---:|---:|")
            for name in group["varying_metrics"]:
                interval = group["metrics"].get(name)
                if interval is None:
                    continue
                lines.append(
                    f"| `{name}` | {interval['n']} "
                    f"| {_format_value(interval['mean'])} "
                    f"| {_format_value(interval['ci95_half_width'])} "
                    f"| [{_format_value(interval['ci95_low'])}, "
                    f"{_format_value(interval['ci95_high'])}] |"
                )
            stable = group["stable_metric_count"]
            if stable:
                lines.append("")
                lines.append(
                    f"{stable} further metrics are seed-stable in this group."
                )
    lines.append("")

    failures: Dict[str, str] = report["failures"]
    if failures:
        lines.append("## Failures")
        lines.append("")
        for scenario_id, error in failures.items():
            lines.append(f"- `{scenario_id}`: {error}")
        lines.append("")
    return "\n".join(lines)
