"""Cross-scenario sweep reports: delta tables and seed-variance flags.

A sweep produces one Section-3 report (and one Figure-2 improvement
summary) per grid cell; this module aggregates them into a single
cross-scenario report:

* a **delta table** per metric — min, max, spread and the per-scenario
  values — separating the metrics that actually respond to the swept
  axes from the ones that stay constant,
* **seed-variance flags** — scenarios that differ *only* in a seed axis
  (``seed`` or any ``*.seed`` field) are grouped, and every metric that
  varies within such a group is flagged: at fixed configuration those
  numbers are sampling noise, and any claim built on them needs more
  seeds, and
* the **cache accounting** of the execution (computed vs cached stage
  invocations, duplicate-compute check).

Reports serialize as JSON (``sort_keys=True`` plus a ``schema_version``
field, so golden files and cross-run diffs stay stable) and as a
markdown document for humans.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import write_json_report as _write_json_report
from repro.sweep.executor import ScenarioResult, SweepResult
from repro.sweep.grid import SweepGrid

#: Bump when the sweep report JSON layout changes incompatibly.
SWEEP_REPORT_SCHEMA_VERSION = 1


def scenario_metrics(result: ScenarioResult) -> Dict[str, float]:
    """Flat metric dictionary of one scenario (``section3.*`` numbers
    plus the ``correction.*`` improvement summary)."""
    metrics: Dict[str, float] = {}
    if result.section3:
        metrics.update(result.section3)
    if result.correction:
        improvement = result.correction.get("improvement", {})
        for key, value in improvement.items():
            metrics[f"correction.{key}"] = value
    return metrics


def _is_seed_field(field: str) -> bool:
    return field == "seed" or field.endswith(".seed")


def _delta_table(
    ok_results: Sequence[ScenarioResult],
) -> Dict[str, Dict[str, object]]:
    """metric -> {min, max, spread, values-per-scenario}."""
    per_scenario = {r.scenario_id: scenario_metrics(r) for r in ok_results}
    metric_names = sorted({name for m in per_scenario.values() for name in m})
    table: Dict[str, Dict[str, object]] = {}
    for name in metric_names:
        values = {
            scenario_id: metrics[name]
            for scenario_id, metrics in per_scenario.items()
            if name in metrics
        }
        if not values:
            continue
        low, high = min(values.values()), max(values.values())
        table[name] = {
            "min": low,
            "max": high,
            "spread": high - low,
            "values": values,
        }
    return table


def _seed_variance(
    ok_results: Sequence[ScenarioResult],
) -> Dict[str, object]:
    """Group scenarios that differ only in seed axes; flag noisy metrics."""
    seed_fields = sorted(
        {f for r in ok_results for f in r.overrides if _is_seed_field(f)}
    )
    groups: Dict[Tuple[Tuple[str, object], ...], List[ScenarioResult]] = {}
    for result in ok_results:
        fixed = tuple(
            (f, v) for f, v in sorted(result.overrides.items()) if not _is_seed_field(f)
        )
        groups.setdefault(fixed, []).append(result)

    reported: List[Dict[str, object]] = []
    varying_union: set = set()
    for fixed, members in sorted(groups.items(), key=lambda item: repr(item[0])):
        if len(members) < 2:
            continue
        metric_sets = [scenario_metrics(m) for m in members]
        names = sorted(set().union(*metric_sets))
        varying = [
            name
            for name in names
            if len({metrics.get(name) for metrics in metric_sets}) > 1
        ]
        varying_union.update(varying)
        reported.append(
            {
                "fixed": {field: value for field, value in fixed},
                "scenario_ids": [m.scenario_id for m in members],
                "varying_metrics": varying,
                "stable_metric_count": len(names) - len(varying),
            }
        )
    return {
        "seed_fields": seed_fields,
        "groups": reported,
        "varying_metrics": sorted(varying_union),
    }


def build_report(
    sweep: SweepResult, grid: Optional[SweepGrid] = None
) -> Dict[str, object]:
    """The complete cross-scenario report of one sweep execution."""
    ok_results = sweep.ok()
    report: Dict[str, object] = {
        "schema_version": SWEEP_REPORT_SCHEMA_VERSION,
        "targets": list(sweep.targets),
        "executor": sweep.executor,
        "cache_dir": sweep.cache_dir,
        "seconds": round(sweep.seconds, 4),
        "grid": grid.spec_dict() if grid is not None else None,
        "waves": sweep.waves,
        "cache": {
            **sweep.cache_counters(),
            "total_stage_invocations": sweep.plan.total_stage_invocations(),
            "distinct_stage_invocations": sweep.plan.distinct_stage_invocations(),
            "duplicate_computes": sweep.duplicate_computes(),
            "fully_cached": sweep.fully_cached(),
            "sharing": sweep.plan.sharing_summary(),
        },
        "scenarios": {
            result.scenario_id: {
                "overrides": result.overrides,
                "status": result.status,
                "error": result.error,
                "seconds": round(result.seconds, 4),
                "computed_stages": sorted(result.computed_stages()),
                "cached_stages": sorted(
                    s for s, st in result.stage_statuses.items() if st == "cached"
                ),
                "section3": result.section3,
                "correction": result.correction,
            }
            for result in sweep.results
        },
        "deltas": _delta_table(ok_results),
        "seed_variance": _seed_variance(ok_results),
        "failures": {r.scenario_id: r.error for r in sweep.failed()},
    }
    return report


def write_json_report(report: Dict[str, object], path: Union[str, Path]) -> None:
    """Write a sweep report through the repository's shared stable
    writer (:func:`repro.analysis.report.write_json_report`); the
    report already embeds its own ``schema_version``."""
    _write_json_report(report, path)


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_markdown(report: Dict[str, object]) -> str:
    """A human-readable markdown rendering of :func:`build_report`."""
    lines: List[str] = ["# Sweep report", ""]
    cache = report["cache"]
    scenarios = report["scenarios"]
    lines.append(
        f"{len(scenarios)} scenarios over targets "
        f"`{', '.join(report['targets'])}` in {report['seconds']}s "
        f"(executor `{report['executor']}`)."
    )
    lines.append(
        f"Stage invocations: {cache['computed']} computed, "
        f"{cache['cached']} cached "
        f"({cache['distinct_stage_invocations']} distinct of "
        f"{cache['total_stage_invocations']} total)."
    )
    if cache["duplicate_computes"] and report["cache_dir"] is not None:
        # A cache-less sweep recomputes shared fingerprints per cell by
        # design; only a cached sweep promises exactly-once.
        lines.append(
            f"**Warning:** {len(cache['duplicate_computes'])} fingerprints "
            "were computed more than once (a scenario failure broke the "
            "exactly-once schedule)."
        )
    if cache["fully_cached"]:
        lines.append("Fully cached: nothing was recomputed.")
    lines.append("")

    lines.append("## Scenarios")
    lines.append("")
    lines.append("| scenario | status | computed | cached | seconds |")
    lines.append("|---|---|---:|---:|---:|")
    for scenario_id, data in scenarios.items():
        lines.append(
            f"| `{scenario_id}` | {data['status']} "
            f"| {len(data['computed_stages'])} | {len(data['cached_stages'])} "
            f"| {data['seconds']} |"
        )
    lines.append("")

    deltas: Dict[str, Dict[str, object]] = report["deltas"]
    varying = {name: row for name, row in deltas.items() if row["spread"] != 0}
    constant = len(deltas) - len(varying)
    lines.append("## Metric deltas across scenarios")
    lines.append("")
    if varying:
        lines.append("| metric | min | max | spread |")
        lines.append("|---|---:|---:|---:|")
        for name, row in varying.items():
            lines.append(
                f"| `{name}` | {_format_value(row['min'])} "
                f"| {_format_value(row['max'])} | {_format_value(row['spread'])} |"
            )
        lines.append("")
        lines.append("Per-scenario values of the varying metrics:")
        lines.append("")
        ids = list(scenarios)
        lines.append("| metric | " + " | ".join(f"`{i}`" for i in ids) + " |")
        lines.append("|---|" + "---:|" * len(ids))
        for name, row in varying.items():
            cells = [
                _format_value(row["values"].get(scenario_id, ""))
                for scenario_id in ids
            ]
            lines.append(f"| `{name}` | " + " | ".join(cells) + " |")
    else:
        lines.append("No metric varies across the grid.")
    if constant:
        lines.append("")
        lines.append(f"{constant} metrics are identical across every scenario.")
    lines.append("")

    variance = report["seed_variance"]
    lines.append("## Seed variance at fixed configuration")
    lines.append("")
    if not variance["groups"]:
        lines.append(
            "No scenario group differs only in a seed axis — nothing to flag."
        )
    elif not variance["varying_metrics"]:
        lines.append(
            "Every metric is identical across seeds at fixed configuration."
        )
    else:
        lines.append(
            "Metrics that change when **only the seed** changes (sampling "
            "noise — conclusions about them need more seeds):"
        )
        lines.append("")
        for group in variance["groups"]:
            if not group["varying_metrics"]:
                continue
            fixed = (
                ", ".join(
                    f"{field}={_format_value(value)}"
                    for field, value in group["fixed"].items()
                )
                or "(base config)"
            )
            lines.append(
                f"- at {fixed}: "
                + ", ".join(f"`{name}`" for name in group["varying_metrics"])
            )
    lines.append("")

    failures: Dict[str, str] = report["failures"]
    if failures:
        lines.append("## Failures")
        lines.append("")
        for scenario_id, error in failures.items():
            lines.append(f"- `{scenario_id}`: {error}")
        lines.append("")
    return "\n".join(lines)
