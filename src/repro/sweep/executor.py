"""Sweep execution: many scenarios, one artifact cache, isolated failures.

:func:`run_sweep` executes a planned sweep wave by wave (see
:mod:`repro.sweep.planner`): scenarios within a wave never claim the
same not-yet-computed fingerprint, so they can run concurrently while
every distinct stage invocation is still computed exactly once and
reused through the shared :class:`~repro.pipeline.ArtifactCache` by
every later scenario that needs it.

Executors:

* ``"serial"`` — one scenario at a time in this process.  Combine with
  ``propagation_workers`` to parallelize *inside* each scenario instead:
  the propagation stages then run through
  :meth:`~repro.bgp.engine.PropagationEngine.run_many`, whose
  fork-sharing machinery ships the graph and policies to process
  workers by fork inheritance (bit-identical to serial, so cached
  artifacts and fingerprints are unaffected).
* ``"thread"`` (default) — scenarios of a wave run on a thread pool.
  CPython's GIL bounds the speedup for this pure-Python workload, but
  cache I/O and the many small stages overlap, and the mode is ready
  for free-threaded builds.
* ``"process"`` — scenarios of a wave run on a process pool.  Only the
  small pickled ``PipelineConfig`` and the result payload cross the
  boundary; all artifact sharing happens through the on-disk cache,
  which is what makes cross-process reuse safe (atomic writes,
  hash-verified reads).  Requires the default stage DAG (a custom
  ``stages`` list may close over unpicklable state).
* ``"cluster"`` — scenarios run on cooperating worker *processes*
  coordinated through a durable task queue (``queue_dir``); see
  :mod:`repro.cluster`.  Requires a shared ``cache_dir`` and the
  default stage DAG.  ``workers`` spawns that many local drain-mode
  workers; external ``repro worker`` processes can join the same queue.

Cache hygiene: ``cache_budget_bytes`` prunes the shared cache down to
the budget after every wave (age-then-LRU, the ``repro cache prune``
logic), so long campaigns stay inside a disk quota.  A budget tight
enough to evict artifacts a *later* wave still needs trades the
exactly-once guarantee for the quota — the recompute shows up in the
per-fingerprint counters, never as an error.

Failure isolation: a scenario that raises is recorded as ``"failed"``
with its error message; every other scenario still runs.  A rerun of
the same sweep against the same cache resumes from whatever the failed
run managed to cache.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.correction import correction_payload
from repro.pipeline import PipelineConfig, StageSpec, make_runner, run_pipeline
from repro.pipeline.runner import StageFailure
from repro.pipeline.stages import propagation_parallelism
from repro.sweep.grid import Scenario, SweepGrid
from repro.sweep.planner import DEFAULT_TARGETS, ScenarioPlan, SweepPlan, plan_sweep
from repro.telemetry import TelemetryConfig, Tracer, activated, get_tracer

_EXECUTORS = ("serial", "thread", "process", "cluster")


@dataclass
class ScenarioResult:
    """The outcome of one grid cell."""

    scenario_id: str
    overrides: Dict[str, object]
    status: str  # "ok" | "failed"
    error: Optional[str] = None
    seconds: float = 0.0
    stage_statuses: Dict[str, str] = field(default_factory=dict)
    fingerprints: Dict[str, str] = field(default_factory=dict)
    section3: Optional[Dict[str, float]] = None
    correction: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def computed_stages(self) -> List[str]:
        return [s for s, status in self.stage_statuses.items() if status == "computed"]


@dataclass
class SweepResult:
    """Everything one sweep execution produced."""

    targets: Tuple[str, ...]
    plan: SweepPlan
    results: List[ScenarioResult]
    seconds: float
    executor: str
    cache_dir: Optional[str]
    waves: List[List[str]] = field(default_factory=list)
    #: Post-mortem records of quarantined (``dead``) tasks — cluster
    #: executor only; in-process executors have no queue, so always [].
    dead_letters: List[Dict[str, object]] = field(default_factory=list)

    def by_id(self) -> Dict[str, ScenarioResult]:
        return {result.scenario_id: result for result in self.results}

    def ok(self) -> List[ScenarioResult]:
        return [result for result in self.results if result.ok]

    def failed(self) -> List[ScenarioResult]:
        return [result for result in self.results if not result.ok]

    # ------------------------------------------------------------------
    # cache accounting (cacheable stages only — a cacheable=False stage
    # is recomputed by every scenario by design, see SweepPlan)
    # ------------------------------------------------------------------
    def _cacheable_computed(self, result: ScenarioResult) -> List[str]:
        return [
            stage
            for stage in result.computed_stages()
            if stage not in self.plan.noncacheable_stages
        ]

    def computed_counts(self) -> Dict[str, int]:
        """Fingerprint -> how many times the sweep computed it.

        With a shared cache every count must be 1 (the wave schedule
        guarantees it as long as no scenario fails); without a cache
        shared fingerprints are recomputed per scenario.
        """
        counts: Dict[str, int] = {}
        for result in self.results:
            for stage in self._cacheable_computed(result):
                fingerprint = result.fingerprints[stage]
                counts[fingerprint] = counts.get(fingerprint, 0) + 1
        return counts

    def duplicate_computes(self) -> Dict[str, int]:
        """Fingerprints computed more than once (empty = perfect dedup)."""
        return {fp: n for fp, n in self.computed_counts().items() if n > 1}

    def cache_counters(self) -> Dict[str, int]:
        """Aggregate cacheable stage-invocation counters, all scenarios."""
        computed = cached = 0
        for result in self.results:
            for stage, status in result.stage_statuses.items():
                if stage in self.plan.noncacheable_stages:
                    continue
                if status == "computed":
                    computed += 1
                else:
                    cached += 1
        return {"computed": computed, "cached": cached}

    def fully_cached(self) -> bool:
        """True when every scenario ran and no cacheable stage recomputed."""
        return bool(self.results) and not self.failed() and all(
            not self._cacheable_computed(result) for result in self.results
        )


# ----------------------------------------------------------------------
# per-scenario execution (module-level: picklable for process pools)
# ----------------------------------------------------------------------
def _execute_scenario(
    config: PipelineConfig,
    cache_dir: Optional[str],
    targets: Tuple[str, ...],
    stages: Optional[Sequence[StageSpec]] = None,
) -> Dict[str, object]:
    """Run one scenario's pipeline; returns a picklable payload.

    A :class:`StageFailure` is converted to a ``"failed"`` payload
    *here* — inside the worker — keeping the partial stage outcomes
    (the stages that completed and were cached before the failure feed
    the sweep's exactly-once accounting) while never asking a process
    pool to pickle the unpicklable partial run.
    """
    started = time.perf_counter()
    try:
        if stages is None:
            run = run_pipeline(config, cache_dir=cache_dir, targets=targets)
        else:
            run = make_runner(cache_dir, stages).run(config, targets=targets)
        payload: Dict[str, object] = {
            "status": "ok",
            "error": None,
            "stage_statuses": {o.stage: o.status for o in run.outcomes},
            "fingerprints": dict(run.fingerprints),
            "section3": None,
            "correction": None,
        }
        if "section3" in targets:
            payload["section3"] = run.value("section3").as_dict()
        if "correction" in targets:
            payload["correction"] = correction_payload(
                run.value("correction"), config.top, config.max_sources
            )
    except StageFailure as exc:
        payload = {
            "status": "failed",
            "error": str(exc),
            "stage_statuses": {o.stage: o.status for o in exc.run.outcomes},
            "fingerprints": dict(exc.run.fingerprints),
            "section3": None,
            "correction": None,
        }
    payload["seconds"] = time.perf_counter() - started
    return payload


def with_trace_context(
    config: PipelineConfig, context: Optional[TelemetryConfig]
) -> PipelineConfig:
    """Stamp a trace context onto a scenario config (fingerprint-neutral:
    ``telemetry`` is in no stage's config slice).  Configs without a
    ``telemetry`` field pass through untouched."""
    if context is None:
        return config
    try:
        return dataclasses.replace(config, telemetry=context)
    except TypeError:
        return config


def _process_task(
    scenario_id: str,
    config: PipelineConfig,
    cache_dir: Optional[str],
    targets: Tuple[str, ...],
) -> Tuple[str, Dict[str, object]]:
    """Process-pool entry point (default stage DAG only)."""
    return scenario_id, _execute_scenario(config, cache_dir, targets)


def _result_from_payload(
    plan: ScenarioPlan, payload: Dict[str, object]
) -> ScenarioResult:
    return ScenarioResult(
        scenario_id=plan.scenario_id,
        overrides=plan.scenario.overrides_dict(),
        status=payload["status"],
        error=payload["error"],
        seconds=payload["seconds"],
        stage_statuses=payload["stage_statuses"],
        fingerprints=payload["fingerprints"],
        section3=payload["section3"],
        correction=payload["correction"],
    )


def _failure_result(plan: ScenarioPlan, exc: BaseException) -> ScenarioResult:
    """Fallback for failures outside the pipeline itself (infra errors,
    a process pool that died) — no partial outcomes are available."""
    return ScenarioResult(
        scenario_id=plan.scenario_id,
        overrides=plan.scenario.overrides_dict(),
        status="failed",
        error=f"{type(exc).__name__}: {exc}",
        fingerprints=dict(plan.fingerprints),
    )


# ----------------------------------------------------------------------
# the sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    grid: Union[SweepGrid, SweepPlan, Sequence[Scenario]],
    cache_dir: Optional[str] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    executor: str = "thread",
    workers: Optional[int] = None,
    stages: Optional[Sequence[StageSpec]] = None,
    propagation_workers: Optional[int] = None,
    queue_dir: Optional[str] = None,
    cache_budget_bytes: Optional[int] = None,
    lease_seconds: float = 30.0,
    wave_timeout: Optional[float] = None,
    task_timeout_seconds: Optional[float] = None,
    trace_dir: Optional[str] = None,
    profiling=None,
) -> SweepResult:
    """Run every scenario of a grid over one shared artifact cache.

    ``grid`` may be a :class:`SweepGrid`, a scenario sequence, or a
    ready :class:`SweepPlan` (e.g. one already built for a pre-flight
    summary — passing it through guarantees the announced plan is the
    executed plan; its embedded targets override the ``targets``
    argument, and it must have been planned over the same ``stages``).

    Without ``cache_dir`` nothing can be shared: the sweep degenerates
    to independent full runs (one wave), which is exactly the baseline
    the ``sweep_grid`` benchmark measures the cache against.

    ``executor="cluster"`` hands the waves to the durable task queue in
    ``queue_dir`` (see :mod:`repro.cluster`); ``workers`` then counts
    spawned local worker processes.  ``cache_budget_bytes`` prunes the
    cache to the budget after every wave barrier.

    ``trace_dir`` turns on telemetry for the sweep: one ``sweep`` span,
    one ``wave`` span per wave, and a trace context stamped onto every
    scenario config so spans from pool threads, pool processes and
    cluster workers all join one tree (fingerprint-neutral — traced and
    untraced sweeps produce byte-identical results).  An already-active
    ambient tracer is used as-is; ``trace_dir`` is then ignored.
    ``profiling`` (a :class:`repro.telemetry.ProfilingConfig`) rides
    the trace context, so pool processes and cluster workers profile
    their hot spans too; it requires a ``trace_dir``.
    """
    if profiling is not None and trace_dir is None:
        raise ValueError("profiling requires a trace_dir to write to")
    if executor not in _EXECUTORS:
        raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if executor in ("process", "cluster") and stages is not None:
        raise ValueError(
            f"executor={executor!r} supports only the default stage DAG "
            "(custom stage lists may not survive pickling)"
        )
    if executor != "serial" and propagation_workers:
        # Under "process" this nests pools inside workers; under
        # "thread" each scenario thread would fork() a process pool
        # while sibling threads hold locks — a classic fork-in-
        # multithreaded-process deadlock.  Per-scenario propagation
        # parallelism composes only with serial scenario execution.
        raise ValueError(
            "propagation_workers requires executor='serial' (scenario-level "
            "parallelism cannot nest per-scenario process pools)"
        )
    if queue_dir is not None and executor != "cluster":
        raise ValueError("queue_dir only applies to executor='cluster'")
    if task_timeout_seconds is not None and executor != "cluster":
        raise ValueError(
            "task_timeout_seconds only applies to executor='cluster' "
            "(the watchdog lives in the queue workers)"
        )
    if cache_budget_bytes is not None and cache_dir is None:
        raise ValueError("cache_budget_bytes requires a cache_dir to prune")
    if executor == "cluster":
        if queue_dir is None:
            raise ValueError("executor='cluster' requires a queue_dir")
        if cache_dir is None:
            raise ValueError(
                "executor='cluster' requires a shared cache_dir (workers "
                "exchange artifacts through it)"
            )
        # Imported lazily: the cluster package imports this module back.
        from repro.cluster.coordinator import run_distributed_sweep

        return run_distributed_sweep(
            grid,
            queue_dir=queue_dir,
            cache_dir=cache_dir,
            targets=targets,
            local_workers=workers,
            lease_seconds=lease_seconds,
            cache_budget_bytes=cache_budget_bytes,
            wave_timeout=wave_timeout,
            task_timeout_seconds=task_timeout_seconds,
            trace_dir=trace_dir,
            profiling=profiling,
        )
    if isinstance(grid, SweepPlan):
        plan = grid
    else:
        scenarios = grid.expand() if isinstance(grid, SweepGrid) else list(grid)
        plan = plan_sweep(scenarios, targets=targets, stages=stages)
    cache_str = str(cache_dir) if cache_dir is not None else None
    # Without a cache there is nothing to share, hence nothing to order.
    waves = plan.waves if cache_str is not None else [plan.plans]

    propagation_context = (
        propagation_parallelism(propagation_workers)
        if propagation_workers
        else contextlib.nullcontext()
    )
    tracer = get_tracer()
    owned: Optional[Tracer] = None
    if trace_dir is not None and not tracer:
        owned = tracer = Tracer(trace_dir, profiling=profiling)
    outcomes: Dict[str, ScenarioResult] = {}
    started = time.perf_counter()
    try:
        with propagation_context, activated(owned):
            with tracer.span(
                "sweep",
                executor=executor,
                scenarios=len(plan.plans),
                waves=len(waves),
            ):
                for index, wave in enumerate(waves):
                    with tracer.span("wave", index=index, scenarios=len(wave)):
                        # Scenario configs carry the trace context (run id
                        # + this wave's span id) so spans emitted by pool
                        # threads and processes join this tree.
                        context = tracer.context() if tracer else None
                        _run_wave(
                            wave, cache_str, plan.targets, executor, workers,
                            stages, outcomes, context,
                        )
                    if cache_budget_bytes is not None and cache_str is not None:
                        from repro.pipeline import ArtifactCache

                        ArtifactCache.from_spec(cache_str).prune(
                            max_bytes=cache_budget_bytes
                        )
    finally:
        if owned is not None:
            owned.flush()
    elapsed = time.perf_counter() - started

    results = [outcomes[p.scenario_id] for p in plan.plans]
    return SweepResult(
        targets=plan.targets,
        plan=plan,
        results=results,
        seconds=elapsed,
        executor=executor,
        cache_dir=cache_str,
        waves=[[p.scenario_id for p in wave] for wave in waves],
    )


def _run_wave(
    wave: Sequence[ScenarioPlan],
    cache_dir: Optional[str],
    targets: Tuple[str, ...],
    executor: str,
    workers: Optional[int],
    stages: Optional[Sequence[StageSpec]],
    outcomes: Dict[str, ScenarioResult],
    trace_context: Optional[TelemetryConfig] = None,
) -> None:
    if not wave:
        return
    if executor == "serial" or len(wave) == 1:
        for plan in wave:
            try:
                payload = _execute_scenario(
                    with_trace_context(plan.scenario.config, trace_context),
                    cache_dir, targets, stages,
                )
                outcomes[plan.scenario_id] = _result_from_payload(plan, payload)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                outcomes[plan.scenario_id] = _failure_result(plan, exc)
        return

    max_workers = min(workers or os.cpu_count() or 1, len(wave))
    if executor == "thread":
        pool_cls = concurrent.futures.ThreadPoolExecutor
        submit = lambda pool, plan: pool.submit(  # noqa: E731
            _execute_scenario,
            with_trace_context(plan.scenario.config, trace_context),
            cache_dir, targets, stages,
        )
    else:
        pool_cls = concurrent.futures.ProcessPoolExecutor
        submit = lambda pool, plan: pool.submit(  # noqa: E731
            _process_task,
            plan.scenario_id,
            with_trace_context(plan.scenario.config, trace_context),
            cache_dir, targets,
        )
    with pool_cls(max_workers=max_workers) as pool:
        futures = {submit(pool, plan): plan for plan in wave}
        for future in concurrent.futures.as_completed(futures):
            plan = futures[future]
            try:
                payload = future.result()
                if executor == "process":
                    payload = payload[1]
                outcomes[plan.scenario_id] = _result_from_payload(plan, payload)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                outcomes[plan.scenario_id] = _failure_result(plan, exc)
