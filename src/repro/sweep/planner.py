"""Sweep planning: fingerprint-level dedup before anything runs.

Two grid cells that differ only in the correction budget share every
stage up to ``views``; two cells that differ only in ``dataset.seed``
still share the ``topology`` stage (the topology has its own seed).
The planner makes that sharing explicit *before* execution:

* :func:`plan_sweep` derives, for every scenario, the fingerprints of
  its target closure (:meth:`PipelineRunner.fingerprints` — pure
  arithmetic, nothing is computed), and
* schedules the scenarios into **waves** such that no two scenarios in
  the same wave claim the same not-yet-computed fingerprint.

Within a wave the executor may run scenarios concurrently; each wave's
newly claimed fingerprints land in the shared artifact cache before the
next wave starts, so across the whole sweep **every distinct stage
invocation is computed exactly once** and every other scenario that
needs it gets a cache hit.  (The one documented exception: if the
scenario that claimed a fingerprint fails before computing it, a later
scenario recomputes it — failure isolation trumps exactly-once, and the
executor's per-fingerprint counters make any duplicate visible.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.pipeline import PipelineRunner, StageSpec, full_stages
from repro.sweep.grid import Scenario

#: The default sweep targets: the Section-3 report and the Figure-2 sweep.
DEFAULT_TARGETS: Tuple[str, ...] = ("section3", "correction")


@dataclass(frozen=True)
class ScenarioPlan:
    """One scenario plus the fingerprints of its target closure."""

    scenario: Scenario
    fingerprints: Dict[str, str]  # stage name -> fingerprint

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id


@dataclass
class SweepPlan:
    """The executable shape of a sweep: plans, waves, sharing summary.

    All sharing accounting covers **cacheable** stages only: a
    ``cacheable=False`` stage (e.g. the ``snapshot`` assembly facade)
    can never be served from the cache, so every scenario legitimately
    recomputes its own — counting those as "shared work" would make the
    schedule serialize scenarios for nothing and the exactly-once
    counters report phantom duplicates.
    """

    targets: Tuple[str, ...]
    stage_order: List[str]
    plans: List[ScenarioPlan]
    noncacheable_stages: Set[str] = field(default_factory=set)
    waves: List[List[ScenarioPlan]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # sharing accounting (cacheable stages only)
    # ------------------------------------------------------------------
    def cacheable_fingerprints(self, plan: ScenarioPlan) -> Set[str]:
        """The fingerprints of one scenario the cache can actually serve."""
        return {
            fingerprint
            for stage, fingerprint in plan.fingerprints.items()
            if stage not in self.noncacheable_stages
        }

    def distinct_fingerprints(self) -> Dict[str, Set[str]]:
        """Stage name -> the distinct cacheable fingerprints needed."""
        result: Dict[str, Set[str]] = {name: set() for name in self.stage_order}
        for plan in self.plans:
            for stage, fingerprint in plan.fingerprints.items():
                if stage not in self.noncacheable_stages:
                    result[stage].add(fingerprint)
        return {stage: fps for stage, fps in result.items() if fps}

    def total_stage_invocations(self) -> int:
        """Cacheable stage invocations a cache-less sweep would perform."""
        return sum(len(self.cacheable_fingerprints(plan)) for plan in self.plans)

    def distinct_stage_invocations(self) -> int:
        """Cacheable stage invocations the deduplicated sweep performs."""
        return sum(len(fps) for fps in self.distinct_fingerprints().values())

    def sharing_summary(self) -> Dict[str, Dict[str, int]]:
        """Per stage: how many scenarios need it vs distinct slices."""
        distinct = self.distinct_fingerprints()
        needed: Dict[str, int] = {}
        for plan in self.plans:
            for stage in plan.fingerprints:
                if stage not in self.noncacheable_stages:
                    needed[stage] = needed.get(stage, 0) + 1
        return {
            stage: {"scenarios": needed[stage], "distinct": len(distinct[stage])}
            for stage in self.stage_order
            if stage in distinct
        }

    def summary_lines(self) -> List[str]:
        """Human-readable plan summary (for the CLI)."""
        lines = [
            f"{len(self.plans)} scenarios over targets {', '.join(self.targets)}: "
            f"{self.distinct_stage_invocations()} distinct stage invocations "
            f"(a cache-less sweep would run {self.total_stage_invocations()})",
        ]
        for stage, counts in self.sharing_summary().items():
            if counts["distinct"] < counts["scenarios"]:
                lines.append(
                    f"  {stage:<14} shared: {counts['distinct']} distinct slices "
                    f"serve {counts['scenarios']} scenarios"
                )
        if len(self.waves) > 1:
            lines.append(
                "  schedule: "
                + " -> ".join(f"wave of {len(wave)}" for wave in self.waves)
            )
        return lines


def _schedule(plan: SweepPlan) -> List[List[ScenarioPlan]]:
    """Greedy wave schedule with disjoint not-yet-computed fingerprints.

    Iterates the scenarios in declaration order; a scenario joins the
    current wave unless one of its still-missing cacheable fingerprints
    was already claimed by an earlier member of the wave (running the
    two concurrently would compute the shared stage twice).
    Deterministic: same plans, same waves.
    """
    waves: List[List[ScenarioPlan]] = []
    computed: Set[str] = set()
    remaining = list(plan.plans)
    while remaining:
        wave: List[ScenarioPlan] = []
        claimed: Set[str] = set()
        deferred: List[ScenarioPlan] = []
        for scenario_plan in remaining:
            new = plan.cacheable_fingerprints(scenario_plan) - computed
            if new & claimed:
                deferred.append(scenario_plan)
            else:
                wave.append(scenario_plan)
                claimed |= new
        waves.append(wave)
        computed |= claimed
        remaining = deferred
    return waves


def plan_sweep(
    scenarios: Sequence[Scenario],
    targets: Sequence[str] = DEFAULT_TARGETS,
    stages: Optional[Sequence[StageSpec]] = None,
) -> SweepPlan:
    """Plan a sweep: closure fingerprints per scenario, wave schedule.

    Duplicate scenario ids are rejected — they would shadow each other
    in every report keyed by id.
    """
    seen: Set[str] = set()
    for scenario in scenarios:
        if scenario.scenario_id in seen:
            raise ValueError(f"duplicate scenario id {scenario.scenario_id!r}")
        seen.add(scenario.scenario_id)
    runner = PipelineRunner(list(stages) if stages is not None else full_stages())
    targets = tuple(targets)
    plans = [
        ScenarioPlan(
            scenario=scenario,
            fingerprints=runner.fingerprints(scenario.config, targets),
        )
        for scenario in scenarios
    ]
    closure = runner.closure(targets)
    plan = SweepPlan(
        targets=targets,
        stage_order=[spec.name for spec in closure],
        plans=plans,
        noncacheable_stages={spec.name for spec in closure if not spec.cacheable},
    )
    plan.waves = _schedule(plan)
    return plan
