"""Parameter-grid scenario runner over the shared artifact cache.

The sweep subsystem treats a *population of scenarios* — not one run —
as the unit of work:

* :mod:`repro.sweep.grid` — declarative sweep specs: axes over
  ``PipelineConfig`` fields expand into concrete configurations with
  stable scenario ids,
* :mod:`repro.sweep.planner` — fingerprint-level dedup: shared upstream
  slices are identified before execution and scheduled into waves so
  each is computed exactly once,
* :mod:`repro.sweep.executor` — serial/thread/process/cluster
  execution with per-scenario failure isolation, resume-from-cache on
  rerun, and optional post-wave cache-budget pruning (the distributed
  ``cluster`` executor lives in :mod:`repro.cluster`),
* :mod:`repro.sweep.report` — cross-scenario delta tables and
  seed-variance statistics with t-based confidence intervals
  (JSON + markdown).

CLI entry point: ``repro sweep --grid grid.json --cache-dir DIR``
(add ``--distributed --queue-dir DIR --local-workers N`` to fan the
waves out to worker processes).  See the "Sweeps" and "Distributed
sweeps" sections of ``docs/architecture.md``.
"""

from repro.sweep.executor import ScenarioResult, SweepResult, run_sweep
from repro.sweep.grid import (
    GRID_SCHEMA_VERSION,
    GridAxis,
    GridError,
    Scenario,
    SweepGrid,
    apply_overrides,
)
from repro.sweep.planner import DEFAULT_TARGETS, ScenarioPlan, SweepPlan, plan_sweep
from repro.sweep.report import (
    SWEEP_REPORT_SCHEMA_VERSION,
    build_report,
    confidence_interval,
    render_markdown,
    scenario_metrics,
    t_critical_95,
    write_json_report,
)

__all__ = [
    "GRID_SCHEMA_VERSION",
    "SWEEP_REPORT_SCHEMA_VERSION",
    "DEFAULT_TARGETS",
    "GridAxis",
    "GridError",
    "Scenario",
    "ScenarioPlan",
    "ScenarioResult",
    "SweepGrid",
    "SweepPlan",
    "SweepResult",
    "apply_overrides",
    "build_report",
    "confidence_interval",
    "plan_sweep",
    "render_markdown",
    "run_sweep",
    "scenario_metrics",
    "t_critical_95",
    "write_json_report",
]
