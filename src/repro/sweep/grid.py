"""Declarative parameter grids over the pipeline configuration.

A sweep starts from a *base* :class:`~repro.pipeline.PipelineConfig`
and a list of :class:`GridAxis` objects, each naming one configuration
field by dotted path (``"dataset.seed"``, ``"top"``,
``"dataset.topology.tier2_count"``, ``"propagation.engine"``, ...) and
the values it takes.  The
cartesian product of the axes expands into concrete
:class:`Scenario` objects — one fully-formed ``PipelineConfig`` per
grid cell, carrying a **stable scenario id** derived from the axis
assignments alone (``"dataset.seed=1,top=3"``), so reports, caches and
golden files can refer to a cell across runs and machines.

Grids are also loadable from JSON (``repro sweep --grid grid.json``)::

    {
      "schema_version": 1,
      "base": {"scale": "small",
               "overrides": {"dataset.vantage_points": 8}},
      "axes": [
        {"field": "dataset.seed", "values": [1, 2]},
        {"field": "top", "values": [10, 20]}
      ]
    }

``base.scale`` selects :func:`~repro.datasets.small_config` (default)
or :func:`~repro.datasets.paper_scale_config`; ``base.overrides`` then
adjusts any field by the same dotted-path mechanism the axes use.
Unknown field paths are rejected at grid-construction time with the
list of valid fields — not halfway through a multi-hour sweep.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.datasets import paper_scale_config, small_config
from repro.pipeline import PipelineConfig

#: Bump when the grid JSON schema changes incompatibly.
GRID_SCHEMA_VERSION = 1

_SCALES = {
    "small": small_config,
    "paper": paper_scale_config,
}


class GridError(ValueError):
    """A malformed sweep grid (unknown field, empty axis, bad JSON)."""


# ----------------------------------------------------------------------
# dotted-path overrides
# ----------------------------------------------------------------------
def _coerce(current: object, value: object, path: str) -> object:
    """Adapt a JSON-borne value to the field it replaces — or refuse.

    Type mismatches must fail here, eagerly: a quoted number in a
    hand-edited grid (``"seed": "7"``) would otherwise seed
    ``random.Random("7")`` and silently produce a cell that is *not*
    bit-identical to the standalone run its scenario id names.

    An explicit ``null`` passes through: optional fields
    (``max_sources``) accept it, and a field that cannot take ``None``
    fails in that scenario alone (failure isolation contains it).
    """
    if value is None:
        return None
    if isinstance(current, _dt.date):
        if isinstance(value, _dt.date):
            return value
        if isinstance(value, str):
            try:
                return _dt.date.fromisoformat(value)
            except ValueError as exc:
                raise GridError(f"{path}: {value!r} is not an ISO date") from exc
        raise GridError(
            f"{path}: expected an ISO date string, got {value!r}"
        )
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        raise GridError(f"{path}: expected a boolean, got {value!r}")
    if isinstance(current, int):
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise GridError(f"{path}: expected an integer, got {value!r}")
    if isinstance(current, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise GridError(f"{path}: expected a number, got {value!r}")
    if isinstance(current, str):
        if isinstance(value, str):
            return value
        raise GridError(f"{path}: expected a string, got {value!r}")
    if dataclasses.is_dataclass(current):
        raise GridError(
            f"{path}: cannot replace a whole config section; override its "
            "fields individually with dotted paths"
        )
    # No basis to check (e.g. the current value is None): pass through.
    return value


def _replace_path(config: object, parts: Sequence[str], value: object, path: str):
    """``dataclasses.replace`` down a dotted field path."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise GridError(
            f"{path}: {'.'.join(parts)} does not resolve to a dataclass field"
        )
    name = parts[0]
    valid = [field.name for field in dataclasses.fields(config)]
    if name not in valid:
        raise GridError(
            f"{path}: {type(config).__name__} has no field {name!r} "
            f"(valid: {', '.join(valid)})"
        )
    if len(parts) == 1:
        return dataclasses.replace(
            config, **{name: _coerce(getattr(config, name), value, path)}
        )
    return dataclasses.replace(
        config, **{name: _replace_path(getattr(config, name), parts[1:], value, path)}
    )


def apply_overrides(
    config: PipelineConfig, overrides: Mapping[str, object]
) -> PipelineConfig:
    """A new config with every ``dotted.path -> value`` override applied.

    Validation is twofold: unknown paths raise :class:`GridError` with
    the valid field names, and the dataclass ``__post_init__`` checks
    (fraction ranges, positive counts) run on every intermediate
    replacement, so an out-of-range axis value fails here, loudly.
    """
    for path, value in overrides.items():
        if not isinstance(path, str) or not path or not all(path.split(".")):
            raise GridError(f"malformed override path {path!r}")
        try:
            config = _replace_path(config, path.split("."), value, path)
        except ValueError as exc:
            if isinstance(exc, GridError):
                raise
            raise GridError(f"{path}={value!r} rejected: {exc}") from exc
    return config


def _value_token(value: object) -> str:
    """The stable rendering of one axis value inside a scenario id."""
    if isinstance(value, _dt.date):
        return value.isoformat()
    if isinstance(value, float):
        return repr(value)
    return str(value)


# ----------------------------------------------------------------------
# the grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridAxis:
    """One swept dimension: a dotted field path and its values."""

    field: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not isinstance(self.field, str) or not self.field:
            raise GridError(
                f"axis field must be a non-empty string, got {self.field!r}"
            )
        if not self.values:
            raise GridError(f"axis {self.field!r} has no values")


@dataclass(frozen=True)
class Scenario:
    """One grid cell: a stable id, its axis assignments, the config."""

    scenario_id: str
    overrides: Tuple[Tuple[str, object], ...]
    config: PipelineConfig

    def overrides_dict(self) -> Dict[str, object]:
        return dict(self.overrides)


class SweepGrid:
    """A base configuration plus the axes swept over it."""

    def __init__(self, base: PipelineConfig, axes: Sequence[GridAxis]) -> None:
        self.base = base
        self.axes = list(axes)
        seen: set = set()
        for axis in self.axes:
            if axis.field in seen:
                raise GridError(f"axis {axis.field!r} declared twice")
            seen.add(axis.field)
        # Validate every axis value eagerly: a bad path or out-of-range
        # value must fail at construction, not mid-sweep.
        for axis in self.axes:
            for value in axis.values:
                apply_overrides(base, {axis.field: value})

    def __len__(self) -> int:
        cells = 1
        for axis in self.axes:
            cells *= len(axis.values)
        return cells

    def expand(self) -> List[Scenario]:
        """Every grid cell, axes varying last-axis-fastest.

        Scenario ids are a pure function of the axis assignments
        (declaration order), so the same grid file expands to the same
        ids on every machine and every run.
        """
        scenarios: List[Scenario] = []
        fields = [axis.field for axis in self.axes]
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            overrides = tuple(zip(fields, combo))
            scenario_id = ",".join(
                f"{field}={_value_token(value)}" for field, value in overrides
            ) or "base"
            scenarios.append(
                Scenario(
                    scenario_id=scenario_id,
                    overrides=overrides,
                    config=apply_overrides(self.base, dict(overrides)),
                )
            )
        return scenarios

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def spec_dict(self) -> Dict[str, object]:
        """The JSON-shaped description used in sweep reports."""
        return {
            "schema_version": GRID_SCHEMA_VERSION,
            "axes": [
                {"field": axis.field, "values": list(axis.values)}
                for axis in self.axes
            ],
            "cells": len(self),
        }

    @staticmethod
    def _reject_unknown_keys(
        spec: Mapping[str, object], allowed: Tuple[str, ...], where: str
    ) -> None:
        """A typo'd key must not silently sweep the wrong configuration."""
        unknown = sorted(set(spec) - set(allowed))
        if unknown:
            raise GridError(
                f"unknown key(s) {', '.join(map(repr, unknown))} in {where} "
                f"(allowed: {', '.join(allowed)})"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepGrid":
        if not isinstance(data, Mapping):
            raise GridError("grid spec must be a JSON object")
        cls._reject_unknown_keys(
            data, ("schema_version", "base", "axes"), "the grid spec"
        )
        declared = data.get("schema_version", GRID_SCHEMA_VERSION)
        if declared != GRID_SCHEMA_VERSION:
            raise GridError(
                f"grid schema_version {declared!r} is not supported "
                f"(this build reads version {GRID_SCHEMA_VERSION})"
            )
        base_spec = data.get("base", {})
        if not isinstance(base_spec, Mapping):
            raise GridError("'base' must be an object")
        cls._reject_unknown_keys(base_spec, ("scale", "overrides"), "'base'")
        scale = base_spec.get("scale", "small")
        if scale not in _SCALES:
            raise GridError(
                f"base.scale must be one of {sorted(_SCALES)}, got {scale!r}"
            )
        base = PipelineConfig(dataset=_SCALES[scale]())
        base_overrides = base_spec.get("overrides", {})
        if not isinstance(base_overrides, Mapping):
            raise GridError("'base.overrides' must be an object")
        base = apply_overrides(base, base_overrides)

        axes_spec = data.get("axes")
        if axes_spec is None:
            raise GridError("grid spec is missing 'axes'")
        axes: List[GridAxis] = []
        if isinstance(axes_spec, Mapping):
            items: Sequence[Tuple[str, object]] = list(axes_spec.items())
        elif isinstance(axes_spec, Sequence) and not isinstance(axes_spec, (str, bytes)):
            items = []
            for entry in axes_spec:
                if not isinstance(entry, Mapping) or "field" not in entry or "values" not in entry:
                    raise GridError(
                        "each axis must be {'field': ..., 'values': [...]}"
                    )
                cls._reject_unknown_keys(entry, ("field", "values"), "an axis")
                items.append((entry["field"], entry["values"]))
        else:
            raise GridError("'axes' must be a list of axes or a field->values object")
        for field, values in items:
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise GridError(f"axis {field!r} values must be a list")
            axes.append(GridAxis(field=field, values=tuple(values)))
        if not axes:
            raise GridError("grid has no axes")
        return cls(base, axes)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "SweepGrid":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise GridError(f"grid file {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise GridError(f"grid file {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
