"""Reading and writing relationship-annotated AS topologies.

Two on-disk formats are supported:

* The classic **CAIDA as-rel** format, one link per line::

      # comment lines start with '#'
      <provider-as>|<customer-as>|-1        (p2c)
      <as-a>|<as-b>|0                       (p2p)
      <as-a>|<as-b>|1                       (sibling, rarely used)

  The format carries a single relationship per link, so serializing an
  :class:`~repro.topology.graph.ASGraph` to it requires choosing an
  address family.

* An **extended dual-stack format** that keeps both planes, one link per
  line::

      <as-a>|<as-b>|<rel-v4>|<rel-v6>

  where ``rel-*`` is one of ``-1`` (a is provider of b), ``1`` (a is
  customer of b), ``0`` (peering), ``2`` (sibling) or ``x`` (the link is
  absent from that plane).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.relationships import AFI, Link, Relationship
from repro.topology.graph import ASGraph

_REL_TO_CAIDA = {
    Relationship.P2C: "-1",
    Relationship.P2P: "0",
    Relationship.SIBLING: "1",
}
_CAIDA_TO_REL = {
    "-1": Relationship.P2C,
    "0": Relationship.P2P,
    "1": Relationship.SIBLING,
}

_REL_TO_EXT = {
    Relationship.P2C: "-1",
    Relationship.C2P: "1",
    Relationship.P2P: "0",
    Relationship.SIBLING: "2",
    Relationship.UNKNOWN: "x",
}
_EXT_TO_REL = {value: key for key, value in _REL_TO_EXT.items()}


class TopologyFormatError(ValueError):
    """Raised when a topology file cannot be parsed."""


def _open_for_read(source: Union[str, Path, TextIO]) -> Tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: Union[str, Path, TextIO]) -> Tuple[TextIO, bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


# ----------------------------------------------------------------------
# CAIDA as-rel (single plane)
# ----------------------------------------------------------------------
def write_caida_asrel(
    graph: ASGraph, target: Union[str, Path, TextIO], afi: AFI
) -> int:
    """Write the links of one plane in CAIDA as-rel format.

    p2c links are emitted provider-first, as the format requires.
    Returns the number of links written.
    """
    stream, should_close = _open_for_write(target)
    count = 0
    try:
        stream.write(f"# CAIDA as-rel export, afi={afi}\n")
        for link in graph.links(afi):
            rel = graph.relationship(link.a, link.b, afi)
            if rel is Relationship.P2C:
                stream.write(f"{link.a}|{link.b}|-1\n")
            elif rel is Relationship.C2P:
                stream.write(f"{link.b}|{link.a}|-1\n")
            elif rel in (_REL_TO_CAIDA.keys()):
                stream.write(f"{link.a}|{link.b}|{_REL_TO_CAIDA[rel]}\n")
            else:
                continue
            count += 1
    finally:
        if should_close:
            stream.close()
    return count


def read_caida_asrel(
    source: Union[str, Path, TextIO], afi: AFI, graph: Optional[ASGraph] = None
) -> ASGraph:
    """Read a CAIDA as-rel file into (a plane of) an :class:`ASGraph`.

    When ``graph`` is given the links are merged into it, which is how a
    dual-stack graph is assembled from separate IPv4 and IPv6 files.
    """
    stream, should_close = _open_for_read(source)
    graph = graph if graph is not None else ASGraph()
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                raise TopologyFormatError(
                    f"line {line_number}: expected 'asn|asn|rel', got {line!r}"
                )
            try:
                a, b = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise TopologyFormatError(
                    f"line {line_number}: invalid AS number in {line!r}"
                ) from exc
            rel_code = parts[2]
            if rel_code not in _CAIDA_TO_REL:
                raise TopologyFormatError(
                    f"line {line_number}: unknown relationship code {rel_code!r}"
                )
            rel = _CAIDA_TO_REL[rel_code]
            if afi is AFI.IPV4:
                graph.add_link(a, b, rel_v4=rel)
            else:
                graph.add_link(a, b, rel_v6=rel)
    finally:
        if should_close:
            stream.close()
    return graph


# ----------------------------------------------------------------------
# Extended dual-stack format
# ----------------------------------------------------------------------
def write_dual_stack(graph: ASGraph, target: Union[str, Path, TextIO]) -> int:
    """Write every link with both relationship annotations.

    Returns the number of links written.
    """
    stream, should_close = _open_for_write(target)
    count = 0
    try:
        stream.write("# dual-stack as-rel export: a|b|rel_v4|rel_v6 (canonical orientation)\n")
        for link in graph.links():
            record = graph.dual_stack_relationship(link.a, link.b)
            stream.write(
                f"{link.a}|{link.b}|{_REL_TO_EXT[record.ipv4]}|{_REL_TO_EXT[record.ipv6]}\n"
            )
            count += 1
    finally:
        if should_close:
            stream.close()
    return count


def read_dual_stack(source: Union[str, Path, TextIO]) -> ASGraph:
    """Read a dual-stack as-rel file produced by :func:`write_dual_stack`."""
    stream, should_close = _open_for_read(source)
    graph = ASGraph()
    try:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) != 4:
                raise TopologyFormatError(
                    f"line {line_number}: expected 'a|b|rel_v4|rel_v6', got {line!r}"
                )
            try:
                a, b = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise TopologyFormatError(
                    f"line {line_number}: invalid AS number in {line!r}"
                ) from exc
            try:
                rel_v4 = _EXT_TO_REL[parts[2]]
                rel_v6 = _EXT_TO_REL[parts[3]]
            except KeyError as exc:
                raise TopologyFormatError(
                    f"line {line_number}: unknown relationship code in {line!r}"
                ) from exc
            if a > b:
                # The file stores canonical orientation; a>b is malformed.
                raise TopologyFormatError(
                    f"line {line_number}: links must be in canonical orientation (a < b)"
                )
            graph.add_link(
                a,
                b,
                rel_v4=rel_v4 if rel_v4.is_known else None,
                rel_v6=rel_v6 if rel_v6.is_known else None,
            )
    finally:
        if should_close:
            stream.close()
    return graph


def dumps_dual_stack(graph: ASGraph) -> str:
    """Serialize a graph to an in-memory dual-stack string."""
    buffer = io.StringIO()
    write_dual_stack(graph, buffer)
    return buffer.getvalue()


def loads_dual_stack(text: str) -> ASGraph:
    """Parse a dual-stack string produced by :func:`dumps_dual_stack`."""
    return read_dual_stack(io.StringIO(text))
