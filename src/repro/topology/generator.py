"""Synthetic Internet-like AS topology generator.

The paper measures the real Internet through RouteViews / RIPE RIS.  In
this offline reproduction the measured object is produced by this
generator: a hierarchical AS topology with

* a fully meshed **tier-1 clique** of transit-free ASes,
* **tier-2** transit providers buying transit from several tier-1s and
  peering densely among themselves,
* **tier-3** stub / edge ASes multi-homing to tier-2 (and occasionally
  tier-1) providers,
* partial **IPv6 adoption** (all of tier-1, most of tier-2, a fraction of
  the stubs),
* **IPv6-only peering links** on top of the dual-stack ones (the IPv6
  Internet has historically had looser peering requirements), and
* a configurable fraction of **hybrid links**: dual-stack links whose
  IPv6 relationship differs from the IPv4 one, concentrated on tier-1 /
  tier-2 links and following the type mix reported in Section 3 of the
  paper (67 % peering-for-IPv4 / transit-for-IPv6, the rest
  peering-for-IPv6 / transit-for-IPv4, plus a single reversed-transit
  case).

The generator is fully deterministic given its ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.relationships import AFI, HybridType, Link, Relationship
from repro.topology.graph import ASGraph
from repro.topology.tiers import annotate_tiers


@dataclass
class TopologyConfig:
    """Knobs of the synthetic topology generator.

    The defaults produce a topology of roughly 550 ASes which is large
    enough to exhibit the paper's qualitative behaviour while keeping the
    route-propagation simulator fast enough for the test suite.  The
    benchmark harness scales the counts up.
    """

    seed: int = 2010
    # How tier-3 stubs choose providers.  ``hierarchical`` (default):
    # uniform choice over tier-2 (92 %) or tier-1.  ``scale_free``:
    # preferential attachment — a provider's chance of winning the next
    # stub is proportional to 1 + its current customer count, producing
    # the Internet's heavy-tailed degree distribution (a few providers
    # serve most stubs).  Scale-free graphs are where control-plane
    # compression shines: big populations of stubs share one provider
    # set and collapse into a handful of quotient nodes.
    mode: str = "hierarchical"
    # Hierarchy sizes.
    tier1_count: int = 10
    tier2_count: int = 90
    tier3_count: int = 450
    # Connectivity.
    tier2_providers: Tuple[int, int] = (1, 3)
    tier3_providers: Tuple[int, int] = (1, 2)
    tier2_peering_probability: float = 0.12
    tier3_peering_probability: float = 0.004
    # IPv6 adoption.
    tier1_ipv6_fraction: float = 1.0
    tier2_ipv6_fraction: float = 0.85
    tier3_ipv6_fraction: float = 0.45
    # Extra IPv6-only peering links (fraction of the dual-stack link count).
    ipv6_only_peering_fraction: float = 0.25
    # Hybrid links.
    hybrid_fraction: float = 0.13
    hybrid_peer4_transit6_share: float = 0.67
    include_reversed_transit_case: bool = True
    # First ASN handed out.
    first_asn: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("hierarchical", "scale_free"):
            raise ValueError(
                "mode must be 'hierarchical' or 'scale_free', "
                f"got {self.mode!r}"
            )
        if self.tier1_count < 2:
            raise ValueError("at least two tier-1 ASes are required")
        if not 0.0 <= self.hybrid_fraction <= 1.0:
            raise ValueError("hybrid_fraction must be within [0, 1]")
        if not 0.0 <= self.hybrid_peer4_transit6_share <= 1.0:
            raise ValueError("hybrid_peer4_transit6_share must be within [0, 1]")
        for name in ("tier1_ipv6_fraction", "tier2_ipv6_fraction", "tier3_ipv6_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")

    @property
    def total_ases(self) -> int:
        """Total number of ASes the generator will create."""
        return self.tier1_count + self.tier2_count + self.tier3_count


@dataclass
class GeneratedTopology:
    """Result of :func:`generate_topology`.

    Attributes:
        graph: The annotated AS graph (ground-truth relationships).
        config: The configuration used.
        tier1: Tier-1 ASNs in creation order.
        tier2: Tier-2 ASNs in creation order.
        tier3: Tier-3 (stub) ASNs in creation order.
        hybrid_links: The links that were planted with differing IPv4 /
            IPv6 relationships, with their hybrid type.
    """

    graph: ASGraph
    config: TopologyConfig
    tier1: List[int]
    tier2: List[int]
    tier3: List[int]
    hybrid_links: Dict[Link, HybridType] = field(default_factory=dict)

    @property
    def all_ases(self) -> List[int]:
        """Every ASN in the topology (tier order)."""
        return self.tier1 + self.tier2 + self.tier3

    def tier_of(self, asn: int) -> int:
        """Tier (1, 2 or 3) the generator assigned to ``asn``."""
        if asn in self.tier1:
            return 1
        if asn in self.tier2:
            return 2
        if asn in self.tier3:
            return 3
        raise KeyError(f"AS{asn} was not generated")


def _sample_count(rng: random.Random, bounds: Tuple[int, int]) -> int:
    lo, hi = bounds
    if lo > hi:
        raise ValueError("provider count bounds must satisfy lo <= hi")
    return rng.randint(lo, hi)


def generate_topology(config: Optional[TopologyConfig] = None) -> GeneratedTopology:
    """Generate a synthetic Internet-like topology.

    The returned graph holds the *ground-truth* per-AFI relationships,
    including the planted hybrid links.  The measurement pipeline never
    looks at this ground truth directly — it only sees the BGP paths the
    propagation simulator derives from it — but tests and the evaluation
    harness use it to compute detection precision/recall.
    """
    config = config or TopologyConfig()
    rng = random.Random(config.seed)
    graph = ASGraph()

    next_asn = config.first_asn
    tier1: List[int] = []
    tier2: List[int] = []
    tier3: List[int] = []

    # ------------------------------------------------------------------
    # Tier 1: transit-free clique.
    # ------------------------------------------------------------------
    for index in range(config.tier1_count):
        asn = next_asn
        next_asn += 1
        tier1.append(asn)
        graph.add_as(asn, name=f"tier1-{index}", tier=1, ipv4=True)
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            graph.add_link(a, b, rel_v4=Relationship.P2P)

    # ------------------------------------------------------------------
    # Tier 2: regional transit providers.
    # ------------------------------------------------------------------
    for index in range(config.tier2_count):
        asn = next_asn
        next_asn += 1
        tier2.append(asn)
        graph.add_as(asn, name=f"tier2-{index}", tier=2, ipv4=True)
        providers = rng.sample(tier1, _sample_count(rng, config.tier2_providers))
        for provider in providers:
            graph.add_link(provider, asn, rel_v4=Relationship.P2C)
    # Tier-2 peering mesh (sparse).
    for i, a in enumerate(tier2):
        for b in tier2[i + 1 :]:
            if rng.random() < config.tier2_peering_probability:
                graph.add_link(a, b, rel_v4=Relationship.P2P)

    # ------------------------------------------------------------------
    # Tier 3: stubs and small edge networks.
    # ------------------------------------------------------------------
    if config.mode == "scale_free":
        # Preferential attachment, Barabási–Albert style via the
        # repeated-nodes trick: the pool holds every transit AS once
        # (so new providers can always win a stub) plus one extra entry
        # per customer edge, and each uniform draw from the pool is
        # therefore a draw proportional to 1 + customer count.  The
        # hierarchical branch below keeps its historical RNG stream
        # byte-identical — this branch owns its own draw sequence.
        attachment: List[int] = []
        for provider in tier1 + tier2:
            attachment.extend(
                [provider] * (1 + len(graph.customers_of(provider, AFI.IPV4)))
            )
        transit_count = len(tier1) + len(tier2)
        for index in range(config.tier3_count):
            asn = next_asn
            next_asn += 1
            tier3.append(asn)
            graph.add_as(asn, name=f"stub-{index}", tier=3, ipv4=True)
            count = min(_sample_count(rng, config.tier3_providers), transit_count)
            providers_set: Set[int] = set()
            while len(providers_set) < count:
                providers_set.add(attachment[rng.randrange(len(attachment))])
            for provider in sorted(providers_set):
                graph.add_link(provider, asn, rel_v4=Relationship.P2C)
                attachment.append(provider)
    else:
        for index in range(config.tier3_count):
            asn = next_asn
            next_asn += 1
            tier3.append(asn)
            graph.add_as(asn, name=f"stub-{index}", tier=3, ipv4=True)
            provider_pool = tier2 if rng.random() < 0.92 else tier1
            count = min(_sample_count(rng, config.tier3_providers), len(provider_pool))
            providers = rng.sample(provider_pool, count)
            for provider in providers:
                graph.add_link(provider, asn, rel_v4=Relationship.P2C)
    # Occasional stub-to-stub peering (IXP-style).
    for i, a in enumerate(tier3):
        for b in tier3[i + 1 : i + 40]:
            if rng.random() < config.tier3_peering_probability:
                graph.add_link(a, b, rel_v4=Relationship.P2P)

    # ------------------------------------------------------------------
    # IPv6 adoption: choose which ASes are dual-stack.
    # ------------------------------------------------------------------
    ipv6_ases: Set[int] = set()
    for members, fraction in (
        (tier1, config.tier1_ipv6_fraction),
        (tier2, config.tier2_ipv6_fraction),
        (tier3, config.tier3_ipv6_fraction),
    ):
        for asn in members:
            if rng.random() < fraction:
                ipv6_ases.add(asn)
                graph.node(asn).ipv6 = True

    # Dual-stack links: both endpoints IPv6-capable -> IPv6 relationship
    # mirrors the IPv4 one by default.
    for link in graph.links(AFI.IPV4):
        if link.a in ipv6_ases and link.b in ipv6_ases:
            record = graph.dual_stack_relationship(link.a, link.b)
            graph.set_relationship(link.a, link.b, AFI.IPV6, record.ipv4)

    # ------------------------------------------------------------------
    # Plant hybrid relationships on dual-stack links, biased to tier-1/2.
    # ------------------------------------------------------------------
    hybrid_links: Dict[Link, HybridType] = {}
    dual_stack = graph.dual_stack_links()
    core_ases = set(tier1) | set(tier2)
    core_links = [
        link for link in dual_stack if link.a in core_ases and link.b in core_ases
    ]
    core_link_set = set(core_links)
    other_links = [link for link in dual_stack if link not in core_link_set]
    target = int(round(config.hybrid_fraction * len(dual_stack)))
    rng.shuffle(core_links)
    rng.shuffle(other_links)
    # 85 % of hybrid links live in the core, the remainder elsewhere.
    candidates = core_links + other_links

    target_peer4_transit6 = int(round(config.hybrid_peer4_transit6_share * target))
    target_peer6_transit4 = target - target_peer4_transit6
    if config.include_reversed_transit_case and target_peer6_transit4 > 0:
        # Reserve one slot for the single p2c(IPv4)/c2p(IPv6) case.
        target_peer6_transit4 -= 1

    counts = {
        HybridType.PEER4_TRANSIT6: 0,
        HybridType.PEER6_TRANSIT4: 0,
        HybridType.TRANSIT_REVERSED: 0,
    }
    for link in candidates:
        if len(hybrid_links) >= target:
            break
        record = graph.dual_stack_relationship(link.a, link.b)
        if record is None or not record.both_known:
            continue
        if record.ipv4 is Relationship.P2P:
            if counts[HybridType.PEER4_TRANSIT6] >= target_peer4_transit6:
                continue
            # Peering for IPv4, transit for IPv6 (dominant type).
            rel_v6 = Relationship.P2C if rng.random() < 0.5 else Relationship.C2P
            graph.set_relationship(link.a, link.b, AFI.IPV6, rel_v6)
            hybrid_links[link] = HybridType.PEER4_TRANSIT6
            counts[HybridType.PEER4_TRANSIT6] += 1
        elif record.ipv4.is_transit:
            if (
                config.include_reversed_transit_case
                and counts[HybridType.TRANSIT_REVERSED] == 0
                and target > 0
            ):
                # The single p2c(IPv4)/c2p(IPv6) case the paper reports.
                graph.set_relationship(link.a, link.b, AFI.IPV6, record.ipv4.inverse)
                hybrid_links[link] = HybridType.TRANSIT_REVERSED
                counts[HybridType.TRANSIT_REVERSED] += 1
                continue
            if counts[HybridType.PEER6_TRANSIT4] >= target_peer6_transit4:
                continue
            # Transit for IPv4, peering for IPv6.
            graph.set_relationship(link.a, link.b, AFI.IPV6, Relationship.P2P)
            hybrid_links[link] = HybridType.PEER6_TRANSIT4
            counts[HybridType.PEER6_TRANSIT4] += 1

    # ------------------------------------------------------------------
    # IPv6-only peering links (looser IPv6 peering requirements).
    # ------------------------------------------------------------------
    ipv6_pool = sorted(ipv6_ases)
    extra_target = int(round(config.ipv6_only_peering_fraction * len(dual_stack)))
    attempts = 0
    added = 0
    while added < extra_target and attempts < extra_target * 30:
        attempts += 1
        a, b = rng.sample(ipv6_pool, 2)
        if graph.has_link(a, b):
            continue
        graph.add_link(a, b, rel_v6=Relationship.P2P)
        added += 1

    annotate_tiers(graph, AFI.IPV4)
    return GeneratedTopology(
        graph=graph,
        config=config,
        tier1=tier1,
        tier2=tier2,
        tier3=tier3,
        hybrid_links=hybrid_links,
    )
