"""Control-plane compression: quotient graphs for propagation.

Beckett et al.'s *Control Plane Compression* observation, specialized
to AS-level Gao-Rexford routing: large populations of stub ASes hang
off identical provider/peer sets with interchangeable policies, and
propagating routes to each of them individually is redundant work.
This module partitions ASes into **policy-equivalence classes**,
builds a compressed :class:`~repro.topology.graph.ASGraph` containing
one representative per class, and inflates the compressed propagation
result back to a full-graph result that is **bit-identical** to an
uncompressed run.

Why this is exact (the soundness argument)
------------------------------------------

Only *export-silent sinks* are ever collapsed: ASes with no customers
and no siblings in either plane, a vanilla policy (no TE overrides, no
export relaxations, stock :class:`~repro.bgp.policy.RoutingPolicy` /
:class:`~repro.bgp.policy.LocalPrefScheme` types) that originate
nothing.  Under the valley-free export rule such an AS never sends a
single announcement — provider- and peer-learned routes are exported
only to customers and siblings, of which it has none, and it has no
local routes.  Removing it therefore cannot change any other AS's
candidate routes, so the compressed graph converges to exactly the
state the full graph would at every surviving node.

Two silent sinks are *decision-equivalent* — guaranteed to converge to
the same ``(best sender, learned relationship)`` for every prefix —
when they see the same candidates and rank them the same way:

* identical per-AFI neighbor sets with identical relationships
  (providers and peers, by actual ASN — routes carry sender ASNs and
  paths, so the neighbors must literally be the same ASes);
* each shared neighbor either relaxes its export policy towards both
  or towards neither (``relaxed_export_neighbors`` is per-target, so a
  gratuitous leak can reach one stub but not its twin);
* vanilla import processing: the decision key is ``(LOCAL_PREF,
  -pathlen, -sender)`` and every stock scheme orders customer > peer >
  provider, so the *ordering* over candidate routes is independent of
  the schemes' numeric values.  TE overrides break this and exclude an
  AS; differing numeric schemes, community taggers and strip flags do
  not — inflation replays import at each member with its real policy.

``stubs`` mode groups by the exact signature above in one pass.
``full`` mode additionally runs a bisimulation-style refinement in
which neighbors that are themselves export-silent are matched by their
current equivalence block instead of by ASN (a silent neighbor
contributes no routes, so its identity is irrelevant to the decision);
the partition is refined until stable, which merges e.g. stubs whose
only difference is which *silent* stub they peer with.

Origins and vantage ASes are pinned as singleton survivors (an origin
is not silent; a vantage must keep its own Loc-RIB addressable), and
the plan records an explicit fallback ``reason`` when nothing could be
collapsed so callers can report the decision.

Inflation contract
------------------

:func:`inflate_result` rebuilds the full-graph result through the
exact chain-walk materializer the solver backends use
(:func:`repro.bgp.backends.base.install_converged_routes`): for every
collapsed member the representative's converged ``(sender,
relationship)`` is replayed edge by edge with the *member's* own
policy applied on import, so Loc-RIB contents — AS paths, LOCAL_PREF
under the member's numeric scheme, communities from the member's
tagger — are bit-identical to an uncompressed run.  Reachability
counts are inflated by class size (a member holds a route exactly when
its representative does).  ``events`` is the compressed run's count:
fewer sessions means fewer best-route changes, which is the point —
event totals are a work metric, not part of the route contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.relationships import AFI
from repro.topology.graph import ASGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.policy import RoutingPolicy
    from repro.bgp.prefixes import Prefix
    from repro.bgp.results import PropagationResult

# repro.bgp imports topology.graph at module load, so this module (a
# member of the topology package) must import repro.bgp lazily — the
# helpers below resolve the policy types on first use.

#: Valid values of the ``propagation.compression`` config field.
COMPRESSION_CHOICES = ("off", "stubs", "full")

_AFIS = (AFI.IPV4, AFI.IPV6)


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def _policy_types():
    from repro.bgp.policy import LocalPrefScheme, RoutingPolicy

    return RoutingPolicy, LocalPrefScheme


def _vanilla_export(policy: Optional["RoutingPolicy"]) -> bool:
    """True when the policy's export behavior is provably stock.

    A subclass could override ``export_allowed``; a relaxation lifts
    the valley-free restriction.  Either would let an AS export routes
    a silent sink must not, so both disqualify.
    """
    if policy is None:
        return True
    routing_policy, _ = _policy_types()
    if type(policy) is not routing_policy:
        return False
    return not any(policy.relaxed_export_neighbors.get(afi) for afi in _AFIS)


def _vanilla_import(policy: Optional["RoutingPolicy"]) -> bool:
    """True when the decision *ordering* is scheme-value-independent.

    Stock ``RoutingPolicy`` + stock ``LocalPrefScheme`` (which enforces
    customer > peer > provider) and no TE overrides: any two such ASes
    rank a shared candidate set identically even when their numeric
    LOCAL_PREF values differ.
    """
    if policy is None:
        return True
    routing_policy, local_pref_scheme = _policy_types()
    if type(policy) is not routing_policy:
        return False
    if type(policy.local_pref) is not local_pref_scheme:
        return False
    return not policy.te_overrides


def _silent_sinks(
    graph: ASGraph,
    policies: Mapping[int, RoutingPolicy],
    origin_asns: Set[int],
) -> Set[int]:
    """ASes that provably never export a route in either plane."""
    silent: Set[int] = set()
    for asn in graph.ases:
        if asn in origin_asns:
            continue
        if not _vanilla_export(policies.get(asn)):
            continue
        if any(
            graph.customers_of(asn, afi) or graph.siblings_of(asn, afi)
            for afi in _AFIS
        ):
            continue
        silent.add(asn)
    return silent


# ----------------------------------------------------------------------
# plan shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompressionStats:
    """Before/after sizes of one compression pass."""

    mode: str
    nodes_before: int
    nodes_after: int
    links_before: int
    links_after: int
    classes: int
    collapsed: int
    pinned: int

    @property
    def ratio(self) -> float:
        """Node compression ratio (>= 1.0; 1.0 means nothing collapsed)."""
        if self.nodes_after == 0:
            return 1.0
        return self.nodes_before / self.nodes_after

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "links_before": self.links_before,
            "links_after": self.links_after,
            "classes": self.classes,
            "collapsed": self.collapsed,
            "pinned": self.pinned,
            "ratio": round(self.ratio, 4),
        }


@dataclass
class CompressionMap:
    """Representative <-> member bookkeeping of a compression pass.

    Attributes:
        canonical: ``collapsed member -> surviving representative``.
        members_of: ``representative -> collapsed members`` (sorted;
            the representative itself is *not* listed).
        member_deltas: per collapsed member, the :class:`ASNode`
            attributes (``name``/``tier``/``ipv4``/``ipv6``) that
            differ from its representative's — enough to reconstruct
            the member's node record from the representative's.
    """

    canonical: Dict[int, int] = field(default_factory=dict)
    members_of: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    member_deltas: Dict[int, Dict[str, object]] = field(default_factory=dict)

    def representative(self, asn: int) -> int:
        """The surviving AS whose routes stand in for ``asn``."""
        return self.canonical.get(asn, asn)

    def class_size(self, asn: int) -> int:
        """Members represented by ``asn``, itself included."""
        return 1 + len(self.members_of.get(asn, ()))


@dataclass
class CompressionPlan:
    """One resolved compression decision, reusable across runs.

    ``applied`` is False when the mode is ``off`` or when no
    equivalence class had more than one member; ``reason`` then says
    why and ``graph`` is the original graph unchanged.
    """

    mode: str
    applied: bool
    graph: ASGraph
    map: CompressionMap
    stats: CompressionStats
    reason: Optional[str] = None
    pinned: FrozenSet[int] = frozenset()

    def describe(self) -> str:
        """One-line summary for reason strings and provenance."""
        if not self.applied:
            return f"compression={self.mode} not applied ({self.reason})"
        return (
            f"compression={self.mode} collapsed "
            f"{self.stats.collapsed}/{self.stats.nodes_before} ASes "
            f"({self.stats.nodes_after} remain, "
            f"ratio {self.stats.ratio:.2f}x)"
        )

    def validate_for(
        self, origin_asns: Iterable[int], keep_ribs_for: Optional[Iterable[int]]
    ) -> None:
        """Refuse origins/vantages that this plan collapsed away.

        A plan built for one pinned set must not silently serve a run
        whose origins or vantage ASes were folded into a class — their
        behavior (origination) or observability (own Loc-RIB) would be
        wrong.
        """
        required = set(origin_asns)
        if keep_ribs_for is not None:
            required.update(keep_ribs_for)
        collapsed = sorted(asn for asn in required if asn in self.map.canonical)
        if collapsed:
            raise ValueError(
                "compression plan collapsed AS(es) required by this run "
                f"(origin or vantage): {collapsed[:5]}"
                f"{'...' if len(collapsed) > 5 else ''}; rebuild the plan "
                "with these ASes pinned"
            )


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def _signature(
    graph: ASGraph,
    policies: Mapping[int, RoutingPolicy],
    asn: int,
    blocks: Optional[Dict[int, int]],
) -> Tuple:
    """The decision-equivalence signature of one silent sink.

    Per AFI, the frozenset of ``(neighbor key, relationship,
    neighbor-relaxes-towards-us)`` triples; plane participation flags
    complete it.  With ``blocks`` (full mode) a neighbor that is
    itself a silent sink is keyed by its current equivalence block —
    silent neighbors contribute no candidate routes, so only their
    block identity (not their ASN) can matter; everything else is
    keyed by exact ASN because routes carry real sender ASNs.
    """
    node = graph.node(asn)
    per_afi = []
    for afi in _AFIS:
        entries = []
        for neighbor, relationship in graph.oriented_neighbors(asn, afi):
            neighbor_policy = policies.get(neighbor)
            relaxed_in = (
                neighbor_policy is not None
                and neighbor_policy.is_relaxed(asn, afi)
            )
            if blocks is not None and neighbor in blocks:
                key: Tuple = ("class", blocks[neighbor])
            else:
                key = ("as", neighbor)
            entries.append((key, relationship.value, relaxed_in))
        per_afi.append(frozenset(entries))
    return (node.ipv4, node.ipv6, per_afi[0], per_afi[1])


def _partition_silent(
    graph: ASGraph,
    policies: Mapping[int, RoutingPolicy],
    silent: Set[int],
    mode: str,
) -> Dict[int, int]:
    """Assign every silent sink an equivalence-block id.

    ``stubs``: one pass over the exact-ASN signature.  ``full``:
    bisimulation-style refinement — start from the exact partition of
    the *non-silent* context (silent neighbors abstracted into one
    block), then iteratively split blocks whose members disagree on
    their silent neighbors' blocks, until the partition is stable.
    """
    members = sorted(silent)
    if mode == "stubs":
        blocks: Dict[int, int] = {}
        by_signature: Dict[Tuple, int] = {}
        for asn in members:
            signature = _signature(graph, policies, asn, None)
            block = by_signature.setdefault(signature, len(by_signature))
            blocks[asn] = block
        return blocks

    # full: every silent sink starts in one block, then refine.
    blocks = {asn: 0 for asn in members}
    while True:
        by_signature = {}
        refined: Dict[int, int] = {}
        for asn in members:
            signature = _signature(graph, policies, asn, blocks)
            block = by_signature.setdefault(signature, len(by_signature))
            refined[asn] = block
        if refined == blocks:
            return blocks
        blocks = refined


def compress_topology(
    graph: ASGraph,
    policies: Optional[Mapping[int, RoutingPolicy]] = None,
    mode: str = "stubs",
    pinned: Iterable[int] = (),
    origin_asns: Iterable[int] = (),
) -> CompressionPlan:
    """Partition, pick representatives and build the quotient graph.

    ``origin_asns`` are the ASes that will originate prefixes in runs
    served by this plan — they are never silent.  ``pinned`` ASes
    (origins plus vantage/kept ASes, typically) survive unconditionally
    as their own singletons; a pinned AS that is decision-equivalent to
    a class may still *represent* it, since representation only reads
    its converged routes.
    """
    policies = dict(policies) if policies is not None else {}
    pinned_set = set(pinned) | set(origin_asns)
    nodes_before = len(graph)
    links_before = len(graph.links())

    def unapplied(reason: str) -> CompressionPlan:
        stats = CompressionStats(
            mode=mode,
            nodes_before=nodes_before,
            nodes_after=nodes_before,
            links_before=links_before,
            links_after=links_before,
            classes=0,
            collapsed=0,
            pinned=len(pinned_set),
        )
        return CompressionPlan(
            mode=mode,
            applied=False,
            graph=graph,
            map=CompressionMap(),
            stats=stats,
            reason=reason,
            pinned=frozenset(pinned_set),
        )

    if mode == "off":
        return unapplied("compression disabled")
    if mode not in COMPRESSION_CHOICES:
        raise ValueError(
            f"compression mode must be one of {COMPRESSION_CHOICES}, got {mode!r}"
        )

    silent = _silent_sinks(graph, policies, set(origin_asns))
    blocks = _partition_silent(graph, policies, silent, mode)

    # Group the collapse-eligible members of every block: silent +
    # vanilla import (the ordering argument needs both), and every
    # neighbor's policy stock-typed — a custom policy class could
    # override export_allowed per target AS, in which case "same
    # relationship + same relaxation" no longer implies "same exports".
    routing_policy, _ = _policy_types()

    def _stock_typed(neighbor: int) -> bool:
        policy = policies.get(neighbor)
        return policy is None or type(policy) is routing_policy

    eligible_blocks: Dict[int, List[int]] = {}
    for asn in sorted(silent):
        if not _vanilla_import(policies.get(asn)):
            continue
        if not all(_stock_typed(neighbor) for neighbor in graph.neighbors(asn)):
            continue
        eligible_blocks.setdefault(blocks[asn], []).append(asn)

    canonical: Dict[int, int] = {}
    members_of: Dict[int, Tuple[int, ...]] = {}
    classes = 0
    for _, members in sorted(eligible_blocks.items()):
        collapsible = [asn for asn in members if asn not in pinned_set]
        if not collapsible:
            continue
        pinned_members = [asn for asn in members if asn in pinned_set]
        representative = min(pinned_members) if pinned_members else min(members)
        removed = tuple(asn for asn in collapsible if asn != representative)
        if not removed:
            continue
        classes += 1
        members_of[representative] = removed
        for asn in removed:
            canonical[asn] = representative

    if not canonical:
        return unapplied("no equivalence class has more than one member")

    compressed = ASGraph()
    removed_set = set(canonical)
    for asn in graph.ases:
        if asn in removed_set:
            continue
        node = graph.node(asn)
        compressed.add_as(
            asn, name=node.name, tier=node.tier, ipv4=node.ipv4, ipv6=node.ipv6
        )
    for link in graph.links():
        if link.a in removed_set or link.b in removed_set:
            continue
        record = graph.dual_stack_relationship(link.a, link.b)
        compressed.add_link(
            link.a,
            link.b,
            rel_v4=record.ipv4 if record.ipv4.is_known else None,
            rel_v6=record.ipv6 if record.ipv6.is_known else None,
        )

    member_deltas: Dict[int, Dict[str, object]] = {}
    for asn, representative in canonical.items():
        node = graph.node(asn)
        rep_node = graph.node(representative)
        delta: Dict[str, object] = {}
        for attribute in ("name", "tier", "ipv4", "ipv6"):
            value = getattr(node, attribute)
            if value != getattr(rep_node, attribute):
                delta[attribute] = value
        member_deltas[asn] = delta

    stats = CompressionStats(
        mode=mode,
        nodes_before=nodes_before,
        nodes_after=len(compressed),
        links_before=links_before,
        links_after=len(compressed.links()),
        classes=classes,
        collapsed=len(canonical),
        pinned=len(pinned_set),
    )
    return CompressionPlan(
        mode=mode,
        applied=True,
        graph=compressed,
        map=CompressionMap(
            canonical=canonical,
            members_of=members_of,
            member_deltas=member_deltas,
        ),
        stats=stats,
        pinned=frozenset(pinned_set),
    )


# ----------------------------------------------------------------------
# inflation
# ----------------------------------------------------------------------
def inflate_result(
    graph: ASGraph,
    policies: Optional[Mapping[int, RoutingPolicy]],
    plan: CompressionPlan,
    compressed: PropagationResult,
    keep_ribs_for: Optional[Iterable[int]] = None,
) -> PropagationResult:
    """Expand a compressed-graph result back to the full graph.

    Routes are **replayed**, not copied: every kept AS's Loc-RIB entry
    is rebuilt by :func:`~repro.bgp.backends.base.install_converged_routes`
    walking the converged best-sender forest (a collapsed member
    resolves through its representative's route) and applying the real
    per-edge export/import transformations — so a member with its own
    LOCAL_PREF scheme or community tagger gets exactly the attributes
    an uncompressed run would have installed.  Reachability counts add
    each reached representative's class size.  The returned speakers
    are session-less Loc-RIB holders, like the solver backends'.

    The resolve oracle comes from one of two places.  Preferred: the
    compressed run's recorded ``resolution`` forest (solver backends
    constructed with ``record_resolution=True``), in which case the
    compressed run materializes **no** routes at all — the whole
    compress→propagate→inflate path only ever builds routes for the
    kept full-graph ASes, and inflation itself costs O(equivalence
    classes + kept ASes) per prefix, never a full-graph scan.  Fallback
    (the event backend, whose state is the RIBs): the compressed
    speakers' Loc-RIBs, which then must be complete
    (``keep_ribs_for=None`` on the compressed run) and are walked once
    per prefix.
    """
    from repro.bgp.backends.base import (
        install_converged_routes,
        speakers_without_sessions,
    )
    from repro.bgp.results import PropagationResult

    if not plan.applied:
        raise ValueError("cannot inflate through a plan that was not applied")
    policies = dict(policies) if policies is not None else {}
    keep = set(keep_ribs_for) if keep_ribs_for is not None else None
    members_of = plan.map.members_of
    canonical = plan.map.canonical

    forest = compressed.resolution
    reached: Dict[Prefix, List[int]] = {}
    route_of: Dict[Prefix, Dict[int, object]] = {}
    if forest is None:
        # One pass over the compressed speakers: per prefix, the reached
        # compressed nodes and their converged routes (the resolve
        # oracle, derived from Loc-RIB state).
        reached = {prefix: [] for prefix in compressed.origins}
        route_of = {prefix: {} for prefix in compressed.origins}
        for asn, speaker in compressed.speakers.items():
            for route in speaker.loc_rib:
                reached[route.prefix].append(asn)
                route_of[route.prefix][asn] = route

    speakers = speakers_without_sessions(graph, policies)
    reachable_counts: Dict[Prefix, int] = {}
    for prefix, origin_asn in compressed.origins.items():
        targets: List[int] = []
        if forest is not None:
            resolve_survivor = forest.resolver(prefix)

            def resolve(asn: int, _resolve=resolve_survivor) -> Tuple[int, object]:
                return _resolve(canonical.get(asn, asn))

            count = forest.reached_count(prefix)
            if keep is None:
                # Full materialization: column scan of the reached
                # survivors, members inserted beside their class rep.
                for node in forest.reached(prefix):
                    targets.append(node)
                    expanded = members_of.get(node)
                    if expanded:
                        count += len(expanded)
                        targets.extend(expanded)
            else:
                # Pruned mode never touches the column beyond point
                # lookups: O(classes) for the counts, O(kept) for the
                # targets.  A collapsed member is reached exactly when
                # its representative is (policy equivalence).
                for rep, members in members_of.items():
                    if forest.is_reached(prefix, rep):
                        count += len(members)
                for asn in keep:
                    if forest.is_reached(prefix, canonical.get(asn, asn)):
                        targets.append(asn)
        else:
            routes = route_of[prefix]

            def resolve(asn: int, _routes=routes) -> Tuple[int, object]:
                route = _routes[canonical.get(asn, asn)]
                return route.learned_from, route.learned_relationship

            count = len(reached[prefix])
            for node in reached[prefix]:
                expanded = members_of.get(node, ())
                count += len(expanded)
                if keep is None:
                    targets.append(node)
                    targets.extend(expanded)
                else:
                    if node in keep:
                        targets.append(node)
                    targets.extend(member for member in expanded if member in keep)
        reachable_counts[prefix] = count
        install_converged_routes(speakers, prefix, origin_asn, targets, resolve)

    return PropagationResult(
        speakers=speakers,
        origins=dict(compressed.origins),
        events=compressed.events,
        reachable_counts=reachable_counts,
    )
