"""Tier classification of ASes from their relationships.

The paper observes that hybrid links "usually happen among tier-1 or
tier-2 ASes with large numbers of connections".  To reason about that,
both the synthetic generator and the analysis pipeline need a notion of
*tier*:

* **Tier 1** — transit-free ASes: no providers in the plane under
  consideration, and (for robustness against stub ASes that simply have
  no links) a non-trivial customer cone.
* **Tier 2** — ASes that have providers but also a sizeable customer
  cone: regional / national transit providers.
* **Tier 3** — everything else: stub and small multi-homed edge networks.

The classification is intentionally coarse; the paper only relies on the
tier-1 / tier-2 distinction to describe where hybrid links live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.core.relationships import AFI
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class TierThresholds:
    """Tunable thresholds for :func:`classify_tiers`.

    Attributes:
        tier1_min_cone: Minimum customer-cone size (excluding the AS
            itself) for a transit-free AS to be classified tier 1 instead
            of an isolated stub.
        tier2_min_cone: Minimum customer-cone size (excluding the AS
            itself) for an AS with providers to be classified tier 2.
    """

    tier1_min_cone: int = 1
    tier2_min_cone: int = 2


def classify_tiers(
    graph: ASGraph,
    afi: AFI,
    thresholds: TierThresholds = TierThresholds(),
) -> Dict[int, int]:
    """Classify every AS participating in ``afi`` into tiers 1-3.

    Returns a mapping ``asn -> tier``.  ASes not participating in the
    plane are omitted.
    """
    tiers: Dict[int, int] = {}
    for asn in graph.ases_in(afi):
        cone_size = len(graph.customer_cone(asn, afi)) - 1
        if graph.transit_free(asn, afi) and cone_size >= thresholds.tier1_min_cone:
            tiers[asn] = 1
        elif cone_size >= thresholds.tier2_min_cone:
            tiers[asn] = 2
        else:
            tiers[asn] = 3
    return tiers


def annotate_tiers(
    graph: ASGraph,
    afi: AFI = AFI.IPV4,
    thresholds: TierThresholds = TierThresholds(),
) -> Dict[int, int]:
    """Classify tiers and store them on the graph's node metadata.

    The IPv4 plane is the default reference plane because tiers are a
    business-level property; the paper's tier statements refer to the
    overall (IPv4-dominated) hierarchy.
    """
    tiers = classify_tiers(graph, afi, thresholds)
    for asn, tier in tiers.items():
        graph.node(asn).tier = tier
    return tiers


def tier_members(tiers: Dict[int, int], tier: int) -> List[int]:
    """All ASes assigned to a specific tier, sorted."""
    return sorted(asn for asn, value in tiers.items() if value == tier)


def tier_of_link(tiers: Dict[int, int], a: int, b: int) -> int:
    """Tier of a link, defined as the best (lowest) tier of its endpoints.

    Links involving ASes missing from ``tiers`` are treated as tier 3.
    """
    return min(tiers.get(a, 3), tiers.get(b, 3))


def tier_histogram(tiers: Dict[int, int]) -> Dict[int, int]:
    """Number of ASes per tier."""
    histogram: Dict[int, int] = {}
    for tier in tiers.values():
        histogram[tier] = histogram.get(tier, 0) + 1
    return histogram
