"""AS-level topology annotated with per-address-family relationships.

The :class:`ASGraph` is the central data structure of the substrate: an
undirected multigraph-free AS graph whose edges carry *two* relationship
annotations, one for IPv4 and one for IPv6.  A link can exist in only one
of the planes (an IPv6-only peering, say) in which case the relationship
for the other plane is :data:`~repro.core.relationships.Relationship.UNKNOWN`
and the link is not reported as dual-stack.

The graph is deliberately independent of any BGP machinery; the BGP
propagation simulator (:mod:`repro.bgp.propagation`) and the inference
pipeline (:mod:`repro.core`) both operate on it.

Performance notes
-----------------

Relationship queries sit on the hot path of every downstream consumer
(session building, customer-cone computation, the Gao/degree baselines),
so the graph maintains **incrementally updated directed per-AFI
indexes**:

* ``_rel_from[afi][asn][neighbor]`` holds the relationship of the
  ``asn -> neighbor`` edge *from asn's point of view* for every link
  whose relationship is known in ``afi``.  ``relationship()`` is a pair
  of dict lookups; ``providers_of()`` and friends are single O(deg)
  scans of that dict (no :class:`Link` allocation, no re-orientation).
* ``_sorted_cache`` memoizes the sorted tuples the query helpers return
  (neighbor lists, link lists, the ``ases`` view).  The cache is cleared
  wholesale by every mutation — mutations are construction-phase,
  queries dominate afterwards, so coarse invalidation is the right
  trade-off.

Every mutation **must** go through the graph API (:meth:`add_link`,
:meth:`set_relationship`, :meth:`remove_link`).  Code that mutates a
:class:`~repro.core.relationships.DualStackRelationship` record obtained
from :meth:`dual_stack_relationship` directly bypasses the indexes and
must call :meth:`rebuild_indexes` afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.core.relationships import (
    AFI,
    DualStackRelationship,
    Link,
    Relationship,
    orient_relationship,
)

#: Shared immutable fallback for index lookups of ASes with no links.
_EMPTY: Dict[int, Relationship] = {}


@dataclass(slots=True)
class ASNode:
    """Metadata attached to an AS in the topology.

    Attributes:
        asn: The autonomous system number.
        name: Optional human-readable name (synthetic names look like
            real-world operator names, e.g. ``"AS3356-like"``).
        tier: Coarse position in the transit hierarchy (1 = transit free,
            2 = regional transit, 3 = stub/edge).  The generator fills it
            in; graphs built from external data may leave it at ``0``.
        ipv4: Whether the AS originates/forwards IPv4 prefixes.
        ipv6: Whether the AS originates/forwards IPv6 prefixes.
    """

    asn: int
    name: str = ""
    tier: int = 0
    ipv4: bool = True
    ipv6: bool = False

    def supports(self, afi: AFI) -> bool:
        """True if the AS participates in the given address family."""
        return self.ipv4 if afi is AFI.IPV4 else self.ipv6

    @property
    def dual_stack(self) -> bool:
        """True when the AS participates in both planes."""
        return self.ipv4 and self.ipv6


class ASGraph:
    """Undirected AS graph with per-AFI relationship annotations.

    Relationships are stored in the canonical orientation of each
    :class:`~repro.core.relationships.Link` (smaller ASN first).  All the
    query helpers (``providers_of``, ``customers_of`` ...) re-orient them
    transparently via the directed indexes.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, ASNode] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        self._relationships: Dict[Link, DualStackRelationship] = {}
        # Directed per-AFI relationship index: asn -> neighbor -> the
        # relationship from asn's point of view.  Only known
        # relationships are stored.
        self._rel_from: Dict[AFI, Dict[int, Dict[int, Relationship]]] = {
            AFI.IPV4: {},
            AFI.IPV6: {},
        }
        # Lazily filled cache of sorted tuples handed out by the query
        # helpers; cleared wholesale on every mutation.
        self._sorted_cache: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def _index_set(self, link: Link, afi: AFI, canonical: Relationship) -> None:
        """Record the (possibly UNKNOWN) canonical relationship of a link."""
        index = self._rel_from[afi]
        a, b = link.a, link.b
        if canonical.is_known:
            index.setdefault(a, {})[b] = canonical
            index.setdefault(b, {})[a] = canonical.inverse
        else:
            row = index.get(a)
            if row is not None:
                row.pop(b, None)
            row = index.get(b)
            if row is not None:
                row.pop(a, None)

    def rebuild_indexes(self) -> None:
        """Recompute the directed indexes from the relationship records.

        Only needed after mutating a :class:`DualStackRelationship`
        record obtained from :meth:`dual_stack_relationship` directly;
        the graph's own mutators keep the indexes consistent.
        """
        self._rel_from = {AFI.IPV4: {}, AFI.IPV6: {}}
        self._sorted_cache.clear()
        for link, record in self._relationships.items():
            self._index_set(link, AFI.IPV4, record.ipv4)
            self._index_set(link, AFI.IPV6, record.ipv6)

    def _require_as(self, asn: int) -> None:
        if asn not in self._nodes:
            raise KeyError(f"AS{asn} is not in the graph")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_as(
        self,
        asn: int,
        name: str = "",
        tier: int = 0,
        ipv4: bool = True,
        ipv6: bool = False,
    ) -> ASNode:
        """Add an AS (or update its metadata if it already exists)."""
        if asn < 0:
            raise ValueError("AS numbers must be non-negative")
        node = self._nodes.get(asn)
        if node is None:
            node = ASNode(asn=asn, name=name, tier=tier, ipv4=ipv4, ipv6=ipv6)
            self._nodes[asn] = node
            self._adjacency.setdefault(asn, set())
            self._sorted_cache.clear()
        else:
            if name:
                node.name = name
            if tier:
                node.tier = tier
            node.ipv4 = node.ipv4 or ipv4
            node.ipv6 = node.ipv6 or ipv6
        return node

    def add_link(
        self,
        a: int,
        b: int,
        rel_v4: Optional[Relationship] = None,
        rel_v6: Optional[Relationship] = None,
    ) -> Link:
        """Add a link with relationships expressed from ``a``'s point of view.

        ``rel_v4=Relationship.P2C`` means "``a`` is the provider of ``b``
        in the IPv4 plane".  ``None`` leaves the corresponding plane
        untouched (``UNKNOWN`` for a new link), which is how IPv6-only or
        IPv4-only links are represented.

        Endpoints that are not in the graph yet are created with no plane
        participation; the planes they join are derived from the
        relationships set on their links (or from an explicit
        :meth:`add_as` call).
        """
        if a not in self._nodes:
            self.add_as(a, ipv4=False)
        if b not in self._nodes:
            self.add_as(b, ipv4=False)
        link = Link(a, b)
        record = self._relationships.get(link)
        if record is None:
            record = DualStackRelationship(link=link)
            self._relationships[link] = record
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        if rel_v4 is not None:
            record.ipv4 = orient_relationship(a, b, rel_v4)
            self._index_set(link, AFI.IPV4, record.ipv4)
            self._nodes[a].ipv4 = True
            self._nodes[b].ipv4 = True
        if rel_v6 is not None:
            record.ipv6 = orient_relationship(a, b, rel_v6)
            self._index_set(link, AFI.IPV6, record.ipv6)
            self._nodes[a].ipv6 = True
            self._nodes[b].ipv6 = True
        self._sorted_cache.clear()
        return link

    def set_relationship(
        self, a: int, b: int, afi: AFI, relationship: Relationship
    ) -> None:
        """Set the relationship of an existing link for one plane.

        The relationship is expressed from ``a``'s point of view.
        Setting :data:`Relationship.UNKNOWN` removes the link from the
        given plane (this is how the synthetic peering disputes model two
        ASes de-peering for IPv6 only).
        """
        link = Link(a, b)
        record = self._relationships.get(link)
        if record is None:
            raise KeyError(f"link {link} is not in the graph")
        canonical = orient_relationship(a, b, relationship)
        record.set_relationship(afi, canonical)
        self._index_set(link, afi, canonical)
        self._sorted_cache.clear()

    def remove_link(self, a: int, b: int, recompute_planes: bool = False) -> None:
        """Remove a link entirely (both planes).

        The endpoints' plane-participation flags (``ipv4`` / ``ipv6``)
        are **not** touched by default, even when the removed link was
        the AS's only link in a plane — participation may have been
        declared explicitly through :meth:`add_as` and the graph cannot
        tell the two apart.  Pass ``recompute_planes=True`` to re-derive
        both endpoints' flags from their remaining link relationships
        (any explicitly declared, link-less participation is lost).
        """
        link = Link(a, b)
        if link not in self._relationships:
            raise KeyError(f"link {link} is not in the graph")
        del self._relationships[link]
        adjacency = self._adjacency.get(a)
        if adjacency is not None:
            adjacency.discard(b)
        adjacency = self._adjacency.get(b)
        if adjacency is not None:
            adjacency.discard(a)
        self._index_set(link, AFI.IPV4, Relationship.UNKNOWN)
        self._index_set(link, AFI.IPV6, Relationship.UNKNOWN)
        self._sorted_cache.clear()
        if recompute_planes:
            for asn in (a, b):
                node = self._nodes.get(asn)
                if node is None:
                    continue
                node.ipv4 = bool(self._rel_from[AFI.IPV4].get(asn))
                node.ipv6 = bool(self._rel_from[AFI.IPV6].get(asn))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def ases(self) -> List[int]:
        """All AS numbers, sorted."""
        cached = self._sorted_cache.get(("ases",))
        if cached is None:
            cached = tuple(sorted(self._nodes))
            self._sorted_cache[("ases",)] = cached
        return list(cached)

    def node(self, asn: int) -> ASNode:
        """Metadata for one AS."""
        return self._nodes[asn]

    def nodes(self) -> Iterator[ASNode]:
        """Iterate over all AS metadata records."""
        return iter(self._nodes.values())

    def has_link(self, a: int, b: int) -> bool:
        """True if a link between ``a`` and ``b`` exists in any plane."""
        if a == b:
            return False
        return Link(a, b) in self._relationships

    def links(self, afi: Optional[AFI] = None) -> List[Link]:
        """All links, optionally restricted to those present in ``afi``.

        A link is present in a plane when its relationship there is known
        *or* when both endpoints participate in the plane and the
        relationship was explicitly set (possibly to ``UNKNOWN``) — in
        practice the generator and the serializers always set known
        relationships, so "present" boils down to "relationship known".
        """
        cached = self._sorted_cache.get(("links", afi))
        if cached is None:
            if afi is None:
                cached = tuple(sorted(self._relationships))
            else:
                cached = tuple(
                    sorted(
                        link
                        for link, record in self._relationships.items()
                        if record.relationship(afi).is_known
                    )
                )
            self._sorted_cache[("links", afi)] = cached
        return list(cached)

    def dual_stack_links(self) -> List[Link]:
        """Links whose relationship is known in both planes."""
        cached = self._sorted_cache.get(("dual_stack_links",))
        if cached is None:
            cached = tuple(
                sorted(
                    link
                    for link, record in self._relationships.items()
                    if record.both_known
                )
            )
            self._sorted_cache[("dual_stack_links",)] = cached
        return list(cached)

    def relationship(self, a: int, b: int, afi: AFI) -> Relationship:
        """Relationship of the link ``a-b`` in ``afi`` from ``a``'s view.

        Returns ``UNKNOWN`` for absent links so that callers probing
        arbitrary pairs do not need to special-case missing edges.
        """
        row = self._rel_from[afi].get(a)
        if row is None:
            return Relationship.UNKNOWN
        return row.get(b, Relationship.UNKNOWN)

    def dual_stack_relationship(self, a: int, b: int) -> Optional[DualStackRelationship]:
        """The raw per-plane relationship record of a link (canonical view).

        The returned record is **live**: mutating it directly bypasses
        the graph's directed indexes.  Prefer :meth:`set_relationship`;
        if you must mutate records in bulk, call :meth:`rebuild_indexes`
        afterwards.
        """
        return self._relationships.get(Link(a, b))

    def oriented_neighbors(self, asn: int, afi: AFI) -> Tuple[Tuple[int, Relationship], ...]:
        """``(neighbor, relationship-from-asn)`` pairs, sorted by neighbor.

        Only neighbors whose relationship is known in ``afi`` are
        returned.  This is the bulk accessor the propagation simulator
        uses to build its per-AFI sessions in one O(deg) pass per AS.
        """
        self._require_as(asn)
        key = ("oriented", afi, asn)
        cached = self._sorted_cache.get(key)
        if cached is None:
            row = self._rel_from[afi].get(asn, _EMPTY)
            cached = tuple(sorted(row.items()))
            self._sorted_cache[key] = cached
        return cached

    def neighbors(self, asn: int, afi: Optional[AFI] = None) -> List[int]:
        """Neighbors of an AS, optionally restricted to one plane."""
        self._require_as(asn)
        key = ("neighbors", afi, asn)
        cached = self._sorted_cache.get(key)
        if cached is None:
            if afi is None:
                cached = tuple(sorted(self._adjacency.get(asn, ())))
            else:
                cached = tuple(sorted(self._rel_from[afi].get(asn, _EMPTY)))
            self._sorted_cache[key] = cached
        return list(cached)

    def degree(self, asn: int, afi: Optional[AFI] = None) -> int:
        """Number of neighbors of an AS (optionally per plane)."""
        self._require_as(asn)
        if afi is None:
            return len(self._adjacency.get(asn, ()))
        return len(self._rel_from[afi].get(asn, _EMPTY))

    # ------------------------------------------------------------------
    # relationship-oriented queries
    # ------------------------------------------------------------------
    def _directed_query(self, asn: int, afi: AFI, wanted: Relationship) -> List[int]:
        """Neighbors whose relationship from ``asn``'s view is ``wanted``.

        Raises ``KeyError`` for ASes that are not in the graph — probing
        must never mutate the adjacency structures (the seed
        implementation's ``defaultdict`` silently grew them).
        """
        self._require_as(asn)
        key = (wanted, afi, asn)
        cached = self._sorted_cache.get(key)
        if cached is None:
            row = self._rel_from[afi].get(asn, _EMPTY)
            cached = tuple(sorted(n for n, rel in row.items() if rel is wanted))
            self._sorted_cache[key] = cached
        return list(cached)

    def providers_of(self, asn: int, afi: AFI) -> List[int]:
        """ASes that provide transit to ``asn`` in the given plane."""
        return self._directed_query(asn, afi, Relationship.C2P)

    def customers_of(self, asn: int, afi: AFI) -> List[int]:
        """ASes that buy transit from ``asn`` in the given plane."""
        return self._directed_query(asn, afi, Relationship.P2C)

    def peers_of(self, asn: int, afi: AFI) -> List[int]:
        """Settlement-free peers of ``asn`` in the given plane."""
        return self._directed_query(asn, afi, Relationship.P2P)

    def siblings_of(self, asn: int, afi: AFI) -> List[int]:
        """Sibling ASes of ``asn`` in the given plane."""
        return self._directed_query(asn, afi, Relationship.SIBLING)

    def transit_free(self, asn: int, afi: AFI) -> bool:
        """True when the AS has no providers in the given plane."""
        return not self.providers_of(asn, afi)

    def customer_cone(self, asn: int, afi: AFI) -> Set[int]:
        """All ASes reachable from ``asn`` by repeatedly following p2c links.

        The root itself is included, matching the usual CAIDA definition
        of the customer cone.
        """
        self._require_as(asn)
        index = self._rel_from[afi]
        cone: Set[int] = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for neighbor, rel in index.get(current, _EMPTY).items():
                if rel is Relationship.P2C and neighbor not in cone:
                    cone.add(neighbor)
                    frontier.append(neighbor)
        return cone

    def transit_degree(self, asn: int, afi: AFI) -> int:
        """Number of customers — the 'transit degree' used by degree heuristics."""
        return len(self.customers_of(asn, afi))

    # ------------------------------------------------------------------
    # plane-level views
    # ------------------------------------------------------------------
    def ases_in(self, afi: AFI) -> List[int]:
        """ASes that participate in the given plane.

        Not cached: plane flags live on the (mutable) :class:`ASNode`
        records and are occasionally toggled directly by the generator.
        """
        return sorted(asn for asn, node in self._nodes.items() if node.supports(afi))

    def dual_stack_ases(self) -> List[int]:
        """ASes that participate in both planes."""
        return sorted(asn for asn, node in self._nodes.items() if node.dual_stack)

    def subgraph(self, afi: AFI) -> "ASGraph":
        """A new :class:`ASGraph` restricted to one plane's links."""
        result = ASGraph()
        for asn in self.ases_in(afi):
            node = self._nodes[asn]
            result.add_as(asn, name=node.name, tier=node.tier, ipv4=node.ipv4, ipv6=node.ipv6)
        for link in self.links(afi):
            record = self._relationships[link]
            rel = record.relationship(afi)
            if afi is AFI.IPV4:
                result.add_link(link.a, link.b, rel_v4=rel)
            else:
                result.add_link(link.a, link.b, rel_v6=rel)
        return result

    def to_networkx(self, afi: Optional[AFI] = None) -> nx.Graph:
        """Export to a :class:`networkx.Graph` for generic graph algorithms.

        Edge attributes ``rel_v4`` / ``rel_v6`` hold the canonical
        relationship values; node attributes mirror :class:`ASNode`.
        """
        graph = nx.Graph()
        for asn, node in self._nodes.items():
            if afi is not None and not node.supports(afi):
                continue
            graph.add_node(asn, name=node.name, tier=node.tier, ipv4=node.ipv4, ipv6=node.ipv6)
        for link, record in self._relationships.items():
            if afi is not None and not record.relationship(afi).is_known:
                continue
            graph.add_edge(
                link.a,
                link.b,
                rel_v4=record.ipv4,
                rel_v6=record.ipv6,
            )
        return graph

    def copy(self) -> "ASGraph":
        """Deep-enough copy: nodes and relationship records are duplicated."""
        result = ASGraph()
        for asn, node in self._nodes.items():
            result.add_as(asn, name=node.name, tier=node.tier, ipv4=node.ipv4, ipv6=node.ipv6)
        for link, record in self._relationships.items():
            result._relationships[link] = DualStackRelationship(
                link=link, ipv4=record.ipv4, ipv6=record.ipv6
            )
            result._adjacency[link.a].add(link.b)
            result._adjacency[link.b].add(link.a)
        result.rebuild_indexes()
        return result

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Coarse size statistics used in reports and tests."""
        return {
            "ases": len(self._nodes),
            "links": len(self._relationships),
            "ipv4_links": len(self.links(AFI.IPV4)),
            "ipv6_links": len(self.links(AFI.IPV6)),
            "dual_stack_links": len(self.dual_stack_links()),
            "ipv6_ases": len(self.ases_in(AFI.IPV6)),
            "dual_stack_ases": len(self.dual_stack_ases()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"ASGraph(ases={stats['ases']}, links={stats['links']}, "
            f"ipv6_links={stats['ipv6_links']}, dual_stack={stats['dual_stack_links']})"
        )
