"""AS-level topology substrate: graph, tiers, generator and serialization."""

from repro.topology.graph import ASGraph, ASNode
from repro.topology.generator import GeneratedTopology, TopologyConfig, generate_topology
from repro.topology.tiers import (
    TierThresholds,
    annotate_tiers,
    classify_tiers,
    tier_histogram,
    tier_members,
    tier_of_link,
)
from repro.topology.compress import (
    COMPRESSION_CHOICES,
    CompressionMap,
    CompressionPlan,
    CompressionStats,
    compress_topology,
    inflate_result,
)
from repro.topology.serialization import (
    TopologyFormatError,
    dumps_dual_stack,
    loads_dual_stack,
    read_caida_asrel,
    read_dual_stack,
    write_caida_asrel,
    write_dual_stack,
)

__all__ = [
    "ASGraph",
    "ASNode",
    "COMPRESSION_CHOICES",
    "CompressionMap",
    "CompressionPlan",
    "CompressionStats",
    "compress_topology",
    "inflate_result",
    "GeneratedTopology",
    "TopologyConfig",
    "generate_topology",
    "TierThresholds",
    "annotate_tiers",
    "classify_tiers",
    "tier_histogram",
    "tier_members",
    "tier_of_link",
    "TopologyFormatError",
    "dumps_dual_stack",
    "loads_dual_stack",
    "read_caida_asrel",
    "read_dual_stack",
    "write_caida_asrel",
    "write_dual_stack",
]
