"""A :class:`CacheBackend` decorator that executes a fault plan.

Sits *under* the retry layer and *over* the real store::

    RetryingBackend( FaultInjectingBackend( LocalDirectoryBackend ) )

(the order :meth:`ArtifactCache.from_spec` produces for a
``fault://PLAN!INNER`` spec), so injected transient faults exercise the
same retry path a flaky filesystem would, corrupted payloads flow into
the same hash verification a bit-flipped disk would, and nothing
downstream can tell scripted misfortune from the real thing.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import List, Optional, Tuple

from repro.cluster.backends import (
    CacheBackend,
    ObjectStat,
    PersistentBackendError,
    TransientBackendError,
)
from repro.faults.plan import WORKER_ID_ENV, FaultPlan, FaultSpec, FaultState, shared_state


def _corrupt(data: bytes) -> bytes:
    """Flip the first byte — the smallest corruption a payload hash
    must catch (an empty object has nothing to corrupt)."""
    if not data:
        return data
    return bytes([data[0] ^ 0xFF]) + data[1:]


class FaultInjectingBackend(CacheBackend):
    """Wraps a backend; consults a :class:`FaultPlan` before every
    operation (and corrupts ``get`` results after).

    Counting happens even for non-matching calls — "the 40th put" means
    the 40th put, not the 40th faulted put.  With a plan that has a
    ``state_key`` the counters are process-wide (shared across every
    injector opened from the same plan file); otherwise they are
    private to this instance.
    """

    def __init__(
        self,
        inner: CacheBackend,
        plan: FaultPlan,
        state: Optional[FaultState] = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        if state is not None:
            self.state = state
        elif plan.state_key is not None:
            self.state = shared_state(plan.state_key)
        else:
            self.state = FaultState()

    @property
    def location(self) -> str:
        return self.inner.location

    # ------------------------------------------------------------------
    # the injection point
    # ------------------------------------------------------------------
    def _trip(self, operation: str, key: Optional[str] = None) -> List[FaultSpec]:
        """Count the call, fire raising/stalling faults, and return any
        remaining (post-operation) faults such as ``corrupt``."""
        call = self.state.next_call(operation)
        worker = os.environ.get(WORKER_ID_ENV, "")
        deferred: List[FaultSpec] = []
        for spec in self.plan.matching(operation, call, key, worker):
            if spec.kind == "delay":
                self.state.count_injection("delay")
                time.sleep(spec.delay_seconds)
            elif spec.kind == "crash":
                self.state.count_injection("crash")
                os._exit(3)  # no cleanup, no finally: a SIGKILL twin
            elif spec.kind == "transient":
                self.state.count_injection("transient")
                raise TransientBackendError(
                    f"injected transient fault: {operation} call #{call}"
                    + (f" on {key!r}" if key else "")
                )
            elif spec.kind == "persistent":
                self.state.count_injection("persistent")
                raise PersistentBackendError(
                    f"injected persistent fault: {operation} call #{call}"
                    + (f" on {key!r}" if key else "")
                )
            else:  # corrupt: applied to the operation's result
                deferred.append(spec)
        return deferred

    # ------------------------------------------------------------------
    # the backend contract
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        deferred = self._trip("get", key)
        data = self.inner.get(key)
        if data is not None and any(spec.kind == "corrupt" for spec in deferred):
            self.state.count_injection("corrupt")
            return _corrupt(data)
        return data

    def put(self, key: str, data: bytes) -> None:
        self._trip("put", key)
        self.inner.put(key, data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        self._trip("put_if_absent", key)
        return self.inner.put_if_absent(key, data)

    def delete(self, key: str) -> bool:
        self._trip("delete", key)
        return self.inner.delete(key)

    def stat(self, key: str) -> Optional[ObjectStat]:
        self._trip("stat", key)
        return self.inner.stat(key)

    def list(self, prefix: str = "") -> List[str]:
        self._trip("list")
        return self.inner.list(prefix)

    def scan(self, prefix: str = "") -> List[Tuple[str, ObjectStat]]:
        self._trip("scan")
        return self.inner.scan(prefix)

    def touch(self, key: str) -> None:
        self._trip("touch", key)
        self.inner.touch(key)

    def collect_orphans(
        self, max_age_seconds: Optional[float] = None, dry_run: bool = False
    ) -> int:
        return self.inner.collect_orphans(max_age_seconds, dry_run)

    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        return self.inner.lock(timeout)
