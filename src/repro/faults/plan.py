"""Deterministic fault plans: *which* call fails, *how*, decided up front.

Chaos testing is only worth having when a failing run can be replayed:
a fault plan is a frozen list of :class:`FaultSpec` entries — "the 17th
``get`` raises a transient error", "the 40th ``put`` stalls 5 s in
worker ``local-1``" — fixed before the run starts.  Randomness enters
exactly once, in :meth:`FaultPlan.seeded`, and is spent at *plan
construction*; execution consults the finished plan and nothing else,
so the same plan against the same workload injects the same faults in
the same places, every time.

Plans serialize to JSON (``schema_version``, sorted keys) so a chaos CI
job can commit its storm, and a ``fault://PLAN.json!INNER`` cache spec
(see :func:`repro.cluster.backends.open_backend`) threads a plan
through every component that already passes cache specs around —
coordinator, queue rows, spawned workers — without any of them growing
a chaos-testing parameter.

Call counts are kept **per process** in a module-level registry keyed
by the plan's ``state_key`` (the JSON file path): one worker process
executes many tasks, each of which builds its own ``ArtifactCache``
over a fresh backend instance, and a per-instance counter would reset
at every task boundary — making "the 40th call" unreachable and, worse,
re-triggering early faults on every retry of the same task.
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry import get_tracer

#: Bump when the plan JSON schema changes incompatibly.
FAULT_PLAN_SCHEMA_VERSION = 1

#: The injectable fault kinds.
FAULT_KINDS = ("transient", "persistent", "corrupt", "delay", "crash")

#: Environment variable carrying the executing worker's identity —
#: ``repro worker`` exports it so plan entries can target one worker of
#: a pool (``worker_pattern``), which is what makes "exactly one worker
#: crashes" deterministic instead of a race.
WORKER_ID_ENV = "REPRO_WORKER_ID"


class FaultPlanError(ValueError):
    """A malformed fault plan (unknown kind, bad JSON, missing file)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    Attributes:
        operation: The intercepted operation name (a backend method like
            ``"get"``/``"put"``/``"put_if_absent"``, or a queue method
            like ``"heartbeat"`` for queue-level injection).
        call: 1-based count of that operation *in this process* at
            which the fault fires.
        kind: ``"transient"`` / ``"persistent"`` (raise the matching
            :class:`~repro.cluster.backends.BackendError` subclass),
            ``"corrupt"`` (bit-flip the bytes a ``get`` returns),
            ``"delay"`` (sleep ``delay_seconds`` first, then proceed —
            also the way to script a *stall* longer than a watchdog
            timeout), ``"crash"`` (``os._exit``: the process dies with
            no cleanup, exactly like SIGKILL/OOM).
        delay_seconds: Sleep for ``"delay"`` faults.
        key_prefix: Only fire when the operation's key starts with
            this (empty = any key; operations without a key only match
            an empty prefix).
        worker_pattern: Only fire in processes whose ``REPRO_WORKER_ID``
            contains this substring (empty = any process).
    """

    operation: str
    call: int
    kind: str
    delay_seconds: float = 0.0
    key_prefix: str = ""
    worker_pattern: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.call < 1:
            raise FaultPlanError(f"fault call counts are 1-based, got {self.call}")
        if self.kind == "delay" and self.delay_seconds < 0:
            raise FaultPlanError("delay_seconds must be non-negative")

    def matches(self, operation: str, call: int, key: Optional[str], worker: str) -> bool:
        if self.operation != operation or self.call != call:
            return False
        if self.key_prefix and not (key or "").startswith(self.key_prefix):
            return False
        if self.worker_pattern and self.worker_pattern not in worker:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown FaultSpec fields: {sorted(unknown)}")
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault entry {data!r}: {exc}") from exc


class FaultState:
    """Per-process mutable execution state of one plan: operation call
    counters plus per-kind injection tallies (for assertions)."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.calls: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}

    def next_call(self, operation: str) -> int:
        with self._mutex:
            self.calls[operation] = self.calls.get(operation, 0) + 1
            return self.calls[operation]

    def count_injection(self, kind: str) -> None:
        with self._mutex:
            self.injected[kind] = self.injected.get(kind, 0) + 1
        tracer = get_tracer()
        if tracer:
            tracer.counter("fault.injected", kind=kind)

    def injections(self) -> Dict[str, int]:
        with self._mutex:
            return dict(self.injected)


#: state_key -> shared FaultState (per process).
_STATE_REGISTRY: Dict[str, FaultState] = {}
_STATE_REGISTRY_LOCK = threading.Lock()


def shared_state(state_key: str) -> FaultState:
    """The process-wide :class:`FaultState` for one plan identity."""
    with _STATE_REGISTRY_LOCK:
        state = _STATE_REGISTRY.get(state_key)
        if state is None:
            state = _STATE_REGISTRY[state_key] = FaultState()
        return state


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of scripted faults.

    ``state_key`` names the per-process shared call-count state (see
    module docs); ``None`` means every injector instance counts
    privately — right for single-cache unit tests, wrong for workers
    that rebuild their cache per task.
    """

    entries: Tuple[FaultSpec, ...] = ()
    state_key: Optional[str] = None

    def matching(
        self, operation: str, call: int, key: Optional[str], worker: str
    ) -> List[FaultSpec]:
        return [
            spec for spec in self.entries if spec.matches(operation, call, key, worker)
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        operations: Sequence[str] = ("get", "put", "put_if_absent"),
        calls: int = 200,
        transient_rate: float = 0.05,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.005,
        max_consecutive: int = 2,
    ) -> "FaultPlan":
        """A reproducible random storm: per operation, each of the first
        ``calls`` calls independently faults at the given rates.

        ``max_consecutive`` caps runs of *raising* faults on one
        operation so a storm stays below the retry policy's attempt
        budget — retried calls advance the same counter, so ``k``
        consecutive entries need ``k + 1`` attempts to clear.  Without
        the cap a dense storm would not be testing retries, it would be
        testing retry exhaustion (which gets its own scripted plans).
        The RNG is consumed in one deterministic pass: same arguments,
        same plan, forever.
        """
        rng = random.Random(seed)
        entries: List[FaultSpec] = []
        for operation in operations:
            consecutive = 0
            for call in range(1, calls + 1):
                roll = rng.random()
                if roll < transient_rate:
                    if consecutive < max_consecutive:
                        entries.append(FaultSpec(operation, call, "transient"))
                        consecutive += 1
                    else:
                        # Cap reached: the roll is swallowed whole — it
                        # must not fall through into the corrupt/delay
                        # buckets below.
                        consecutive = 0
                    continue
                consecutive = 0
                if roll < transient_rate + corrupt_rate and operation == "get":
                    entries.append(FaultSpec(operation, call, "corrupt"))
                elif roll < transient_rate + corrupt_rate + delay_rate:
                    entries.append(
                        FaultSpec(operation, call, "delay", delay_seconds=delay_seconds)
                    )
        return cls(tuple(entries))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": FAULT_PLAN_SCHEMA_VERSION,
            "entries": [spec.to_dict() for spec in self.entries],
        }

    def to_json_file(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], state_key: Optional[str] = None
    ) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be a JSON object, got {type(data)}")
        version = data.get("schema_version")
        if version != FAULT_PLAN_SCHEMA_VERSION:
            raise FaultPlanError(
                f"unsupported fault plan schema_version {version!r} "
                f"(expected {FAULT_PLAN_SCHEMA_VERSION})"
            )
        raw_entries = data.get("entries")
        if not isinstance(raw_entries, list):
            raise FaultPlanError("fault plan 'entries' must be a list")
        return cls(
            tuple(FaultSpec.from_dict(entry) for entry in raw_entries),
            state_key=state_key,
        )

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan; its shared-state key is the resolved file path,
        so every injector opened from the same plan file in one process
        shares one call-count sequence."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data, state_key=str(path.resolve()))
