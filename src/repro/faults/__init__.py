"""Deterministic fault injection for chaos-testing the cluster stack.

The package contributes no behaviour to a healthy run; it exists to
make unhealthy runs *reproducible*.  A :class:`FaultPlan` scripts which
operation calls fail and how; :class:`FaultInjectingBackend` executes
the plan against cache storage, :class:`FaultInjectingQueue` against
the task queue, and :func:`intercept_stage` inside the pipeline DAG.
``fault://PLAN.json!INNER`` cache specs (see
:func:`repro.cluster.backends.open_backend`) thread a plan through the
coordinator and into spawned workers with zero new parameters.
"""

from repro.faults.backend import FaultInjectingBackend
from repro.faults.hooks import (
    QUEUE_OPERATIONS,
    FaultInjectingQueue,
    InjectedQueueFault,
    intercept_stage,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PLAN_SCHEMA_VERSION,
    WORKER_ID_ENV,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    FaultState,
    shared_state,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA_VERSION",
    "QUEUE_OPERATIONS",
    "WORKER_ID_ENV",
    "FaultInjectingBackend",
    "FaultInjectingQueue",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultState",
    "InjectedQueueFault",
    "intercept_stage",
    "shared_state",
]
