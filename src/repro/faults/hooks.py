"""Fault hooks for the queue and the pipeline: stalls, crashes, flaky ops.

The backend injector covers storage; the remaining fault surfaces of a
distributed sweep are the *queue* (a worker whose heartbeat or claim
hits a flaky SQLite file) and the *scenario itself* (a stage that hangs
or dies mid-flight).  Both get deterministic hooks here:

* :class:`FaultInjectingQueue` wraps a
  :class:`~repro.cluster.queue.TaskQueue` and runs a
  :class:`~repro.faults.FaultPlan` against its worker-facing operations
  (``claim`` / ``heartbeat`` / ``complete`` / ``fail`` / ``release``).
  Raising kinds raise :class:`InjectedQueueFault` — a plain
  ``RuntimeError``, because that is what a real ``sqlite3`` fault looks
  like to the worker's except-clauses.
* :func:`intercept_stage` rewrites one stage of a stage list so a
  callable runs *before* its compute — the single primitive behind
  simulated stalls (sleep/wait in the callable), crashes
  (``os._exit``), and flaky stages (raise).  It builds on the public
  ``StageSpec`` replace idiom, so intercepted DAGs stay real DAGs:
  fingerprints, caching and resume behave exactly as in production.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.faults.plan import FaultPlan, FaultState

#: Queue operations the injector intercepts.
QUEUE_OPERATIONS = ("claim", "heartbeat", "complete", "fail", "release")


class InjectedQueueFault(RuntimeError):
    """A scripted queue-operation failure (transient or persistent —
    the distinction lives in the plan; to the caller both look like a
    raising queue, which is the point)."""


class FaultInjectingQueue:
    """Delegates to a real :class:`TaskQueue`, injecting scripted
    faults into the worker-facing operations.

    Only ``delay`` and the raising kinds make sense here (``corrupt``
    has no byte stream to corrupt and is rejected at construction);
    ``crash`` works exactly as in the backend injector.  Everything not
    intercepted — enqueue, counts, status — passes straight through.
    """

    def __init__(self, queue, plan: FaultPlan, state: Optional[FaultState] = None):
        for spec in plan.entries:
            if spec.operation in QUEUE_OPERATIONS and spec.kind == "corrupt":
                raise ValueError(
                    f"queue operation {spec.operation!r} cannot be corrupted; "
                    "use transient/persistent/delay/crash"
                )
        self._queue = queue
        self._injector = _QueueTripwire(plan, state)

    def claim(self, *args, **kwargs):
        self._injector.trip("claim")
        return self._queue.claim(*args, **kwargs)

    def heartbeat(self, *args, **kwargs):
        self._injector.trip("heartbeat")
        return self._queue.heartbeat(*args, **kwargs)

    def complete(self, *args, **kwargs):
        self._injector.trip("complete")
        return self._queue.complete(*args, **kwargs)

    def fail(self, *args, **kwargs):
        self._injector.trip("fail")
        return self._queue.fail(*args, **kwargs)

    def release(self, *args, **kwargs):
        self._injector.trip("release")
        return self._queue.release(*args, **kwargs)

    def injections(self):
        return self._injector.state.injections()

    def __getattr__(self, name):
        return getattr(self._queue, name)


class _QueueTripwire:
    """The counting/firing core shared with the backend injector's
    semantics, minus keys (queue operations are not key-addressed)."""

    def __init__(self, plan: FaultPlan, state: Optional[FaultState]) -> None:
        import os

        from repro.faults.plan import WORKER_ID_ENV, shared_state

        self.plan = plan
        if state is not None:
            self.state = state
        elif plan.state_key is not None:
            self.state = shared_state("queue:" + plan.state_key)
        else:
            self.state = FaultState()
        self._worker_env = lambda: os.environ.get(WORKER_ID_ENV, "")

    def trip(self, operation: str) -> None:
        import os
        import time

        call = self.state.next_call(operation)
        for spec in self.plan.matching(operation, call, None, self._worker_env()):
            if spec.kind == "delay":
                self.state.count_injection("delay")
                time.sleep(spec.delay_seconds)
            elif spec.kind == "crash":
                self.state.count_injection("crash")
                os._exit(3)
            else:
                self.state.count_injection(spec.kind)
                raise InjectedQueueFault(
                    f"injected {spec.kind} queue fault: {operation} call #{call}"
                )


def intercept_stage(
    name: str,
    before: Callable[[], None],
    stages: Optional[Sequence] = None,
) -> List:
    """A stage list in which ``before()`` runs ahead of ``name``'s
    compute, every time it computes.

    ``stages`` defaults to the full production DAG.  The wrapped spec
    keeps its declared version and config slice, so fingerprints — and
    therefore cache keys and sweep plans — are identical to the
    unintercepted pipeline: a stalled or crashed run resumes against
    the same cache entries a healthy one would have written.
    """
    from repro.pipeline import full_stages

    specs = list(stages) if stages is not None else list(full_stages())
    rewritten: List = []
    found = False
    for spec in specs:
        if spec.name == name:
            found = True
            original = spec.compute

            def compute(run, _original=original):
                before()
                return _original(run)

            spec = dataclasses.replace(spec, compute=compute)
        rewritten.append(spec)
    if not found:
        raise KeyError(f"no stage named {name!r} to intercept")
    return rewritten
