"""Parsing free-text community documentation into structured meanings.

Real IRR objects and operator web pages describe communities in prose::

    remarks: 65010:100   Routes learned from customers
    remarks: 65010:200   Routes learned from peering partners
    remarks: 65010:300   Routes received from transit providers
    remarks: 65010:666   Set local-preference to 70 (backup)
    remarks: 65010:901   Prepend 65010 once to AS path

The paper mines such text; this module implements the text-mining step:
a keyword/regex based classifier that turns one documentation line into a
:class:`~repro.irr.dictionary.CommunityMeaning`.  The classifier is
deliberately conservative: a line that matches neither the relationship
nor the traffic-engineering vocabulary is classified as informational,
never guessed into a relationship.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from repro.core.relationships import Relationship
from repro.bgp.attributes import Community
from repro.irr.dictionary import CommunityDictionary, CommunityMeaning, MeaningKind

#: Regex locating a community value at the start of a documentation line.
_COMMUNITY_RE = re.compile(r"(?P<asn>\d+):(?P<value>\d+)")

#: Keyword patterns for relationship semantics.  Order matters: the first
#: match wins, and more specific phrases come first.
_RELATIONSHIP_PATTERNS: Tuple[Tuple[Relationship, re.Pattern], ...] = (
    (Relationship.P2C, re.compile(r"\b(from|of|via)\s+(a\s+)?customers?\b", re.I)),
    (Relationship.P2C, re.compile(r"\bcustomer\s+routes?\b", re.I)),
    (Relationship.P2C, re.compile(r"\bdownstream\b", re.I)),
    (Relationship.P2P, re.compile(r"\b(from|of|via)\s+(a\s+)?(peers?|peering\s+partners?)\b", re.I)),
    (Relationship.P2P, re.compile(r"\bpeer\s+routes?\b", re.I)),
    (Relationship.P2P, re.compile(r"\b(public|private)\s+peering\b", re.I)),
    (Relationship.C2P, re.compile(r"\b(from|of|via)\s+(an?\s+)?(upstreams?|providers?|transit\s+providers?)\b", re.I)),
    (Relationship.C2P, re.compile(r"\bupstream\s+routes?\b", re.I)),
    (Relationship.C2P, re.compile(r"\btransit\s+routes?\b", re.I)),
    (Relationship.SIBLING, re.compile(r"\bsiblings?\b", re.I)),
)

#: Keyword patterns for traffic-engineering semantics (action, pattern).
_TE_PATTERNS: Tuple[Tuple[str, re.Pattern], ...] = (
    ("prepend-3", re.compile(r"\bprepend(?:ed|ing)?\b.*\b(3|three|thrice)\b", re.I)),
    ("prepend-2", re.compile(r"\bprepend(?:ed|ing)?\b.*\b(2|two|twice)\b", re.I)),
    ("prepend-1", re.compile(r"\bprepend(?:ed|ing)?\b", re.I)),
    ("blackhole", re.compile(r"\b(blackhole|black-hole|discard\s+traffic)\b", re.I)),
    ("no-export-peers", re.compile(r"\b(do\s+not|don't)\s+(announce|export)\b.*\bpeers?\b", re.I)),
    ("no-export-upstreams", re.compile(r"\b(do\s+not|don't)\s+(announce|export)\b.*\b(upstreams?|providers?)\b", re.I)),
    ("lower-pref", re.compile(r"\b(lower|reduce|decrease|set)\b.*\b(local[- ]?pref(erence)?)\b.*\b(below|backup|\d+)\b", re.I)),
    ("lower-pref", re.compile(r"\blocal[- ]?pref(erence)?\b.*\b(below\s+default|backup)\b", re.I)),
    ("raise-pref", re.compile(r"\b(raise|increase)\b.*\blocal[- ]?pref(erence)?\b", re.I)),
)


class DocumentationParseError(ValueError):
    """Raised when a documentation line has no recognisable community."""


def parse_documentation_line(line: str) -> Optional[CommunityMeaning]:
    """Parse one documentation line.

    Returns ``None`` for comment / empty lines.  Raises
    :class:`DocumentationParseError` when the line is non-empty but does
    not start with a recognisable ``asn:value`` community.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    # IRR objects prefix lines with "remarks:"; tolerate and strip it.
    if text.lower().startswith("remarks:"):
        text = text[len("remarks:"):].strip()
    if not text:
        return None
    match = _COMMUNITY_RE.match(text)
    if match is None:
        raise DocumentationParseError(f"no community value found in {line!r}")
    community = Community(int(match.group("asn")), int(match.group("value")))
    description = text[match.end():].strip(" \t-:")
    kind, relationship, action = classify_description(description)
    return CommunityMeaning(
        community=community,
        kind=kind,
        relationship=relationship,
        action=action,
        description=description,
    )


def classify_description(
    description: str,
) -> Tuple[MeaningKind, Optional[Relationship], Optional[str]]:
    """Classify a free-text description.

    Traffic-engineering vocabulary is checked *before* relationship
    vocabulary: a line such as "do not announce to peers" mentions peers
    but is a TE action, and misclassifying it as a relationship tag would
    poison the inference (the paper makes the same distinction).
    """
    for action, pattern in _TE_PATTERNS:
        if pattern.search(description):
            return MeaningKind.TRAFFIC_ENGINEERING, None, action
    for relationship, pattern in _RELATIONSHIP_PATTERNS:
        if pattern.search(description):
            return MeaningKind.RELATIONSHIP, relationship, None
    return MeaningKind.INFORMATIONAL, None, None


def parse_documentation(
    lines: Iterable[str], expected_asn: Optional[int] = None
) -> List[CommunityMeaning]:
    """Parse a block of documentation lines.

    ``expected_asn`` restricts the result to communities administered by
    one AS (lines about other ASes are skipped, which mirrors how the
    paper only trusts an AS's documentation for its own communities).
    """
    meanings: List[CommunityMeaning] = []
    for line in lines:
        meaning = parse_documentation_line(line)
        if meaning is None:
            continue
        if expected_asn is not None and meaning.community.asn != expected_asn:
            continue
        meanings.append(meaning)
    return meanings


def dictionary_from_documentation(
    asn: int, lines: Iterable[str]
) -> CommunityDictionary:
    """Build a :class:`CommunityDictionary` from documentation text."""
    dictionary = CommunityDictionary(asn)
    for meaning in parse_documentation(lines, expected_asn=asn):
        dictionary.add(meaning)
    return dictionary


def render_documentation(dictionary: CommunityDictionary) -> List[str]:
    """Render a dictionary back into IRR-style documentation lines.

    The output round-trips through :func:`dictionary_from_documentation`
    (property-tested in the test suite), which keeps the generated
    corpora realistic and the parser honest.
    """
    lines = [f"# BGP communities of AS{dictionary.asn}"]
    for meaning in dictionary.meanings():
        lines.append(f"remarks: {meaning.community}   {meaning.description}")
    return lines
