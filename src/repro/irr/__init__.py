"""IRR substrate: community dictionaries, documentation parsing, registry."""

from repro.irr.dictionary import (
    CommunityDictionary,
    CommunityMeaning,
    MeaningKind,
    build_standard_dictionary,
)
from repro.irr.parser import (
    DocumentationParseError,
    classify_description,
    dictionary_from_documentation,
    parse_documentation,
    parse_documentation_line,
    render_documentation,
)
from repro.irr.registry import IRRRegistry, build_registry

__all__ = [
    "CommunityDictionary",
    "CommunityMeaning",
    "MeaningKind",
    "build_standard_dictionary",
    "DocumentationParseError",
    "classify_description",
    "dictionary_from_documentation",
    "parse_documentation",
    "parse_documentation_line",
    "render_documentation",
    "IRRRegistry",
    "build_registry",
]
