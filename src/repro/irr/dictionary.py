"""Per-AS BGP community dictionaries.

The Communities attribute is a free-form (asn, value) tag; its meaning is
defined by the AS identified in the ``asn`` half and, in the real world,
documented in Internet Routing Registry (IRR) objects or on looking-glass
pages.  The paper mines exactly those documents to translate community
values into relationship information.

A :class:`CommunityDictionary` is the structured form of one AS's
documentation:

* **relationship communities** — "this route was learned from a
  customer / peer / provider",
* **traffic-engineering communities** — "prepend twice towards AS x",
  "lower LOCAL_PREF", "blackhole", … which the paper uses to recognise
  and discard LOCAL_PREF values set for traffic engineering, and
* **informational communities** — city / PoP / IXP tags, irrelevant to
  the analysis but present in real data, so the parser and the inference
  must cope with them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.relationships import Relationship
from repro.bgp.attributes import Community


class MeaningKind(enum.Enum):
    """Coarse category of a community's documented meaning."""

    RELATIONSHIP = "relationship"
    TRAFFIC_ENGINEERING = "traffic-engineering"
    INFORMATIONAL = "informational"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CommunityMeaning:
    """The documented meaning of a single community value.

    Attributes:
        community: The (asn, value) pair being described.
        kind: Category of the meaning.
        relationship: For relationship communities, the relationship the
            tagging AS has towards the neighbour it learned the route
            from (``P2C`` = learned from customer).
        action: For traffic-engineering communities, a symbolic action
            name (``"prepend-1"``, ``"lower-pref"``, ``"blackhole"``, ...).
        description: Free-text description, as would appear in an IRR
            object; generated documentation round-trips through the
            parser in :mod:`repro.irr.parser`.
    """

    community: Community
    kind: MeaningKind
    relationship: Optional[Relationship] = None
    action: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind is MeaningKind.RELATIONSHIP and self.relationship is None:
            raise ValueError("relationship meanings must carry a relationship")
        if self.kind is MeaningKind.TRAFFIC_ENGINEERING and not self.action:
            raise ValueError("traffic-engineering meanings must carry an action")


class CommunityDictionary:
    """All documented community values of one AS.

    The class implements the :class:`~repro.bgp.policy.CommunityTagger`
    protocol, so it can be plugged directly into a
    :class:`~repro.bgp.policy.RoutingPolicy` to make the simulated AS tag
    its routes according to its own documentation — which is precisely
    the property the paper's inference exploits.
    """

    def __init__(self, asn: int) -> None:
        self.asn = asn
        self._meanings: Dict[Community, CommunityMeaning] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, meaning: CommunityMeaning) -> None:
        """Register a meaning; the community must belong to this AS."""
        if meaning.community.asn != self.asn:
            raise ValueError(
                f"community {meaning.community} does not belong to AS{self.asn}"
            )
        self._meanings[meaning.community] = meaning

    def add_relationship(
        self, value: int, relationship: Relationship, description: str = ""
    ) -> CommunityMeaning:
        """Register a relationship-tagging community value."""
        meaning = CommunityMeaning(
            community=Community(self.asn, value),
            kind=MeaningKind.RELATIONSHIP,
            relationship=relationship,
            description=description or _default_relationship_text(relationship),
        )
        self.add(meaning)
        return meaning

    def add_traffic_engineering(
        self, value: int, action: str, description: str = ""
    ) -> CommunityMeaning:
        """Register a traffic-engineering community value."""
        meaning = CommunityMeaning(
            community=Community(self.asn, value),
            kind=MeaningKind.TRAFFIC_ENGINEERING,
            action=action,
            description=description or _default_te_text(action),
        )
        self.add(meaning)
        return meaning

    def add_informational(self, value: int, description: str) -> CommunityMeaning:
        """Register an informational community value."""
        meaning = CommunityMeaning(
            community=Community(self.asn, value),
            kind=MeaningKind.INFORMATIONAL,
            description=description,
        )
        self.add(meaning)
        return meaning

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._meanings)

    def __contains__(self, community: Community) -> bool:
        return community in self._meanings

    def meanings(self) -> List[CommunityMeaning]:
        """All registered meanings, sorted by community value."""
        return sorted(self._meanings.values(), key=lambda m: m.community.value)

    def meaning_of(self, community: Community) -> Optional[CommunityMeaning]:
        """The meaning of a community value (``None`` if undocumented)."""
        return self._meanings.get(community)

    def relationship_for(self, community: Community) -> Optional[Relationship]:
        """Relationship encoded by a community (``None`` if not a relationship tag)."""
        meaning = self._meanings.get(community)
        if meaning is None or meaning.kind is not MeaningKind.RELATIONSHIP:
            return None
        return meaning.relationship

    def is_traffic_engineering(self, community: Community) -> bool:
        """True if the community is a documented traffic-engineering tag."""
        meaning = self._meanings.get(community)
        return meaning is not None and meaning.kind is MeaningKind.TRAFFIC_ENGINEERING

    # ------------------------------------------------------------------
    # CommunityTagger protocol (used by the routing policies)
    # ------------------------------------------------------------------
    def relationship_communities(self, relationship: Relationship) -> List[Community]:
        """Communities this AS attaches to routes learned over ``relationship``."""
        return [
            meaning.community
            for meaning in self.meanings()
            if meaning.kind is MeaningKind.RELATIONSHIP
            and meaning.relationship is relationship
        ]

    def traffic_engineering_communities(self, action: str) -> List[Community]:
        """Communities this AS attaches for a traffic-engineering action."""
        return [
            meaning.community
            for meaning in self.meanings()
            if meaning.kind is MeaningKind.TRAFFIC_ENGINEERING and meaning.action == action
        ]


def _default_relationship_text(relationship: Relationship) -> str:
    texts = {
        Relationship.P2C: "routes learned from customers",
        Relationship.P2P: "routes learned from peers",
        Relationship.C2P: "routes learned from upstream providers",
        Relationship.SIBLING: "routes learned from sibling ASes",
    }
    return texts.get(relationship, "routes of unspecified origin")


def _default_te_text(action: str) -> str:
    texts = {
        "prepend-1": "prepend own AS once towards the tagged neighbor",
        "prepend-2": "prepend own AS twice towards the tagged neighbor",
        "prepend-3": "prepend own AS three times towards the tagged neighbor",
        "lower-pref": "set local preference below the default value",
        "raise-pref": "set local preference above the default value",
        "blackhole": "drop traffic towards the tagged prefix (blackhole)",
        "no-export-peers": "do not announce to peers",
        "no-export-upstreams": "do not announce to upstream providers",
    }
    return texts.get(action, f"traffic engineering action: {action}")


# ----------------------------------------------------------------------
# Standard dictionary "styles"
# ----------------------------------------------------------------------
#: Each style maps relationship / TE actions to community values.  Real
#: operators use wildly different numbering conventions; exposing several
#: styles keeps the inference honest (it must use the dictionary, not
#: guess magic values).
_STYLES: Tuple[Dict[str, int], ...] = (
    {"customer": 100, "peer": 200, "provider": 300, "lower-pref": 70, "prepend-1": 901},
    {"customer": 1000, "peer": 2000, "provider": 3000, "lower-pref": 80, "prepend-1": 911},
    {"customer": 10, "peer": 20, "provider": 30, "lower-pref": 666, "prepend-1": 501},
    {"customer": 3001, "peer": 3002, "provider": 3003, "lower-pref": 90, "prepend-1": 921},
    {"customer": 500, "peer": 510, "provider": 520, "lower-pref": 50, "prepend-1": 531},
)


def build_standard_dictionary(
    asn: int, style: Optional[int] = None, rng: Optional[random.Random] = None
) -> CommunityDictionary:
    """Build a realistic dictionary for an AS using one of the known styles.

    ``style`` selects the numbering convention explicitly; when omitted a
    deterministic pseudo-random style (seeded by ``rng`` or the ASN) is
    chosen.  Every generated dictionary documents the three relationship
    tags, a couple of traffic-engineering tags and an informational tag.
    """
    if style is None:
        chooser = rng or random.Random(asn)
        style = chooser.randrange(len(_STYLES))
    if not 0 <= style < len(_STYLES):
        raise ValueError(f"style must be within [0, {len(_STYLES) - 1}]")
    values = _STYLES[style]
    dictionary = CommunityDictionary(asn)
    dictionary.add_relationship(values["customer"], Relationship.P2C)
    dictionary.add_relationship(values["peer"], Relationship.P2P)
    dictionary.add_relationship(values["provider"], Relationship.C2P)
    dictionary.add_traffic_engineering(values["lower-pref"], "lower-pref")
    dictionary.add_traffic_engineering(values["prepend-1"], "prepend-1")
    dictionary.add_informational(values["customer"] + 9000 if values["customer"] + 9000 <= 0xFFFF else 65000,
                                 "routes received at the main PoP")
    return dictionary
