"""An IRR-like registry of community documentation for many ASes.

The registry plays the role of the Internet Routing Registries in the
paper's methodology: given a community value observed in BGP data, it is
the place to ask "what does this value mean according to the AS that
administers it?".

Coverage is intentionally partial: only a subset of ASes document their
communities (controlled by the synthetic dataset builder), which is what
limits the paper's relationship coverage to 72 % of the IPv6 links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.relationships import Relationship
from repro.bgp.attributes import Community
from repro.irr.dictionary import (
    CommunityDictionary,
    CommunityMeaning,
    MeaningKind,
    build_standard_dictionary,
)
from repro.irr.parser import dictionary_from_documentation, render_documentation


class IRRRegistry:
    """A collection of per-AS community dictionaries."""

    def __init__(self) -> None:
        self._dictionaries: Dict[int, CommunityDictionary] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def register(self, dictionary: CommunityDictionary) -> None:
        """Add (or replace) the dictionary of one AS."""
        self._dictionaries[dictionary.asn] = dictionary

    def register_documentation(self, asn: int, lines: Iterable[str]) -> CommunityDictionary:
        """Parse documentation text and register the resulting dictionary."""
        dictionary = dictionary_from_documentation(asn, lines)
        self.register(dictionary)
        return dictionary

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._dictionaries)

    def __contains__(self, asn: int) -> bool:
        return asn in self._dictionaries

    def __iter__(self) -> Iterator[CommunityDictionary]:
        return iter(self._dictionaries.values())

    @property
    def documented_ases(self) -> List[int]:
        """ASes that have a registered dictionary."""
        return sorted(self._dictionaries)

    def dictionary_for(self, asn: int) -> Optional[CommunityDictionary]:
        """The dictionary of one AS (``None`` if undocumented)."""
        return self._dictionaries.get(asn)

    def meaning_of(self, community: Community) -> Optional[CommunityMeaning]:
        """Look up the documented meaning of a community value."""
        dictionary = self._dictionaries.get(community.asn)
        if dictionary is None:
            return None
        return dictionary.meaning_of(community)

    def relationship_for(self, community: Community) -> Optional[Relationship]:
        """Relationship encoded by a community, if documented as such."""
        meaning = self.meaning_of(community)
        if meaning is None or meaning.kind is not MeaningKind.RELATIONSHIP:
            return None
        return meaning.relationship

    def is_traffic_engineering(self, community: Community) -> bool:
        """True when the community is documented as a traffic-engineering tag."""
        meaning = self.meaning_of(community)
        return meaning is not None and meaning.kind is MeaningKind.TRAFFIC_ENGINEERING

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def documentation_corpus(self) -> Dict[int, List[str]]:
        """Render every registered dictionary back to documentation text."""
        return {
            asn: render_documentation(dictionary)
            for asn, dictionary in sorted(self._dictionaries.items())
        }

    def stats(self) -> Dict[str, int]:
        """Size statistics used by reports."""
        relationship = 0
        traffic_engineering = 0
        informational = 0
        for dictionary in self._dictionaries.values():
            for meaning in dictionary.meanings():
                if meaning.kind is MeaningKind.RELATIONSHIP:
                    relationship += 1
                elif meaning.kind is MeaningKind.TRAFFIC_ENGINEERING:
                    traffic_engineering += 1
                else:
                    informational += 1
        return {
            "documented_ases": len(self._dictionaries),
            "relationship_communities": relationship,
            "traffic_engineering_communities": traffic_engineering,
            "informational_communities": informational,
        }


def build_registry(
    asns: Iterable[int],
    documented_fraction: float = 0.75,
    seed: int = 0,
) -> IRRRegistry:
    """Build a registry where a fraction of ASes document their communities.

    The selection of documented ASes and the numbering style of each
    dictionary are deterministic functions of ``seed``.
    """
    if not 0.0 <= documented_fraction <= 1.0:
        raise ValueError("documented_fraction must be within [0, 1]")
    rng = random.Random(seed)
    registry = IRRRegistry()
    for asn in sorted(set(asns)):
        if rng.random() < documented_fraction:
            registry.register(build_standard_dictionary(asn, rng=rng))
    return registry
