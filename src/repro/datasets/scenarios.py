"""Small hand-built scenarios used by tests, examples and documentation.

Each scenario is deliberately tiny (a handful of ASes) so that the
expected outcome of every algorithm can be worked out by hand; the unit
tests assert those hand-computed outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix
from repro.irr.dictionary import CommunityDictionary
from repro.irr.registry import IRRRegistry
from repro.topology.graph import ASGraph


# ----------------------------------------------------------------------
# Figure 1: the customer tree of AS1 with the AS1-AS2 link p2c vs p2p
# ----------------------------------------------------------------------
@dataclass
class Figure1Scenario:
    """The five-AS example of Figure 1.

    AS1 is the root; AS3 is its direct customer; AS2 has customers AS4
    and AS5.  In variant (a) the link AS1–AS2 is provider-to-customer,
    so AS1's customer tree covers every AS; in variant (b) the link is
    peer-to-peer and the tree shrinks to {AS1, AS3}.

    Attributes:
        annotation_p2c: IPv6 annotation for variant (a).
        annotation_p2p: IPv6 annotation for variant (b).
    """

    annotation_p2c: ToRAnnotation
    annotation_p2p: ToRAnnotation

    ROOT: int = 1

    @property
    def expected_tree_p2c(self) -> frozenset:
        """Members of AS1's customer tree in variant (a)."""
        return frozenset({1, 2, 3, 4, 5})

    @property
    def expected_tree_p2p(self) -> frozenset:
        """Members of AS1's customer tree in variant (b)."""
        return frozenset({1, 3})


def figure1_scenario() -> Figure1Scenario:
    """Build both variants of the Figure-1 example."""
    base: Dict[Tuple[int, int], Relationship] = {
        (1, 3): Relationship.P2C,
        (2, 4): Relationship.P2C,
        (2, 5): Relationship.P2C,
    }
    annotation_p2c = ToRAnnotation(AFI.IPV6)
    annotation_p2p = ToRAnnotation(AFI.IPV6)
    for (a, b), relationship in base.items():
        annotation_p2c.set(a, b, relationship)
        annotation_p2p.set(a, b, relationship)
    annotation_p2c.set(1, 2, Relationship.P2C)
    annotation_p2p.set(1, 2, Relationship.P2P)
    return Figure1Scenario(annotation_p2c=annotation_p2c, annotation_p2p=annotation_p2p)


# ----------------------------------------------------------------------
# A small dual-stack topology with one hybrid link
# ----------------------------------------------------------------------
@dataclass
class HybridScenario:
    """A seven-AS dual-stack topology with exactly one hybrid link.

    The link AS10–AS20 is peer-to-peer for IPv4 but AS10 sells transit to
    AS20 for IPv6 (the dominant hybrid type found by the paper).
    """

    graph: ASGraph
    hybrid_link: Link


def hybrid_scenario() -> HybridScenario:
    """Build the seven-AS hybrid scenario."""
    graph = ASGraph()
    # Two providers (10, 20), one shared upstream (1), stubs below.
    graph.add_as(1, name="tier1", tier=1, ipv6=True)
    graph.add_as(10, name="left-transit", tier=2, ipv6=True)
    graph.add_as(20, name="right-transit", tier=2, ipv6=True)
    for stub in (101, 102, 201, 202):
        graph.add_as(stub, name=f"stub-{stub}", tier=3, ipv6=True)
    graph.add_link(1, 10, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(1, 20, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    # The hybrid link: p2p for IPv4, p2c (10 provides to 20) for IPv6.
    graph.add_link(10, 20, rel_v4=Relationship.P2P, rel_v6=Relationship.P2C)
    graph.add_link(10, 101, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(10, 102, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(20, 201, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(20, 202, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    return HybridScenario(graph=graph, hybrid_link=Link(10, 20))


# ----------------------------------------------------------------------
# Observations with communities and LOCAL_PREF (the Rosetta Stone)
# ----------------------------------------------------------------------
@dataclass
class RosettaScenario:
    """Hand-built observations exercising the LocPrf calibration.

    Vantage AS 100 peers with AS 200 (peer), buys from AS 300 (provider)
    and sells to AS 400 (customer).  Its community dictionary documents
    relationship tags; its LOCAL_PREF scheme is 900/800/700.  One route
    carries a traffic-engineering community with a misleading LOCAL_PREF
    value which must be filtered out.
    """

    registry: IRRRegistry
    observations: List[ObservedRoute]
    vantage: int = 100

    CUSTOMER_PREF: int = 900
    PEER_PREF: int = 800
    PROVIDER_PREF: int = 700
    TE_PREF: int = 50


def rosetta_scenario() -> RosettaScenario:
    """Build the Rosetta-Stone calibration scenario."""
    vantage = 100
    dictionary = CommunityDictionary(vantage)
    dictionary.add_relationship(10, Relationship.P2C, "routes learned from customers")
    dictionary.add_relationship(20, Relationship.P2P, "routes learned from peers")
    dictionary.add_relationship(30, Relationship.C2P, "routes learned from upstream providers")
    dictionary.add_traffic_engineering(666, "lower-pref", "set local preference below default")
    registry = IRRRegistry()
    registry.register(dictionary)

    def prefix(index: int) -> Prefix:
        return Prefix(f"3fff:{index:x}::/32")

    observations = [
        # Calibration routes: communities identify the first-hop relationship.
        ObservedRoute(
            path=(100, 400),
            prefix=prefix(1),
            vantage=vantage,
            communities=(Community(100, 10),),
            local_pref=900,
        ),
        ObservedRoute(
            path=(100, 200, 210),
            prefix=prefix(2),
            vantage=vantage,
            communities=(Community(100, 20),),
            local_pref=800,
        ),
        ObservedRoute(
            path=(100, 300, 310),
            prefix=prefix(3),
            vantage=vantage,
            communities=(Community(100, 30),),
            local_pref=700,
        ),
        # Application route: no relationship community, LOCAL_PREF 800
        # reveals that AS 100 and AS 250 are peers.
        ObservedRoute(
            path=(100, 250, 251),
            prefix=prefix(4),
            vantage=vantage,
            communities=(),
            local_pref=800,
        ),
        # Traffic-engineering route: misleading LOCAL_PREF, must be skipped.
        ObservedRoute(
            path=(100, 260, 261),
            prefix=prefix(5),
            vantage=vantage,
            communities=(Community(100, 666),),
            local_pref=50,
        ),
    ]
    return RosettaScenario(registry=registry, observations=observations, vantage=vantage)


# ----------------------------------------------------------------------
# A valley path scenario
# ----------------------------------------------------------------------
@dataclass
class ValleyScenario:
    """A topology whose IPv6 plane needs a valley to stay connected.

    Tier-1 ASes 1 and 2 do not interconnect for IPv6 (a peering dispute);
    AS 30 is a customer of both and leaks routes between them, producing
    paths such as ``50 1 30 2 60`` which contain the valley ``1 -> 30 ->
    2`` (down then up).  There is no valley-free alternative between the
    two customer cones, so the valley is reachability-motivated.
    """

    annotation: ToRAnnotation
    valley_path: Tuple[int, ...]
    valley_free_path: Tuple[int, ...]


def valley_scenario() -> ValleyScenario:
    """Build the peering-dispute valley scenario."""
    annotation = ToRAnnotation(AFI.IPV6)
    # Two disconnected tier-1s; AS 30 buys from both.
    annotation.set(1, 30, Relationship.P2C)
    annotation.set(2, 30, Relationship.P2C)
    # Each tier-1 has its own customer.
    annotation.set(1, 50, Relationship.P2C)
    annotation.set(2, 60, Relationship.P2C)
    # A valley path observed from AS 50 towards AS 60's prefix.
    valley_path = (50, 1, 30, 2, 60)
    # A valley-free path that does exist: from 50 to 30 (up to 1, down to 30).
    valley_free_path = (50, 1, 30)
    return ValleyScenario(
        annotation=annotation,
        valley_path=valley_path,
        valley_free_path=valley_free_path,
    )
