"""Dataset builders: the synthetic snapshot and hand-built scenarios."""

from repro.datasets.scenarios import (
    Figure1Scenario,
    HybridScenario,
    RosettaScenario,
    ValleyScenario,
    figure1_scenario,
    hybrid_scenario,
    rosetta_scenario,
    valley_scenario,
)
from repro.datasets.snapshot_io import (
    LoadedSnapshot,
    SnapshotFormatError,
    load_snapshot,
    save_snapshot,
)
from repro.datasets.synthetic import (
    DatasetConfig,
    SyntheticSnapshot,
    build_snapshot,
    paper_scale_config,
    small_config,
)

__all__ = [
    "LoadedSnapshot",
    "SnapshotFormatError",
    "load_snapshot",
    "save_snapshot",
    "Figure1Scenario",
    "HybridScenario",
    "RosettaScenario",
    "ValleyScenario",
    "figure1_scenario",
    "hybrid_scenario",
    "rosetta_scenario",
    "valley_scenario",
    "DatasetConfig",
    "SyntheticSnapshot",
    "build_snapshot",
    "paper_scale_config",
    "small_config",
]
