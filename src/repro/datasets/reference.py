"""Frozen monolithic snapshot builder (pre-pipeline composition).

The dataset-side counterpart of :mod:`repro.bgp.reference` and
:mod:`repro.analysis.reference`: this module preserves, verbatim, the
*composition order* ``build_snapshot`` had before it was decomposed
into the staged pipeline (:mod:`repro.pipeline.stages`) — one shared
``random.Random(seed)`` stream threaded sequentially through policy
construction, peering disputes, gratuitous leaks, vantage selection and
per-AFI origin selection, with propagation, collection and extraction
interleaved exactly as the monolith interleaved them.

The golden tests (``tests/test_pipeline_golden.py``) build the same
configuration through both paths on two seeds and assert the snapshots
are bit-identical; this is what pins the staged decomposition (in
particular the RNG-consumption order of the ``scenario`` stage) to the
historical semantics.

The *sub-step helpers* (``_build_policies`` and friends) are shared
with :mod:`repro.datasets.synthetic` on purpose: what this module
freezes is the orchestration — the thing the pipeline refactor changed
— not the per-step algorithms, which the staged path calls unchanged.
Do not "modernize" this module; it exists to stay put.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.analysis.paths import extract_from_archive
from repro.bgp.prefixes import PrefixAllocator
from repro.bgp.propagation import PropagationResult, PropagationSimulator
from repro.collectors.archive import CollectorArchive
from repro.collectors.collector import default_collectors
from repro.core.annotation import ToRAnnotation
from repro.core.relationships import AFI
from repro.datasets.synthetic import (
    DatasetConfig,
    SyntheticSnapshot,
    _apply_gratuitous_leaks,
    _apply_peering_disputes,
    _build_policies,
    _select_origins,
    _select_vantage_points,
)
from repro.irr.registry import build_registry
from repro.topology.generator import generate_topology


def reference_build_snapshot(
    config: Optional[DatasetConfig] = None,
) -> SyntheticSnapshot:
    """Build a snapshot exactly the way the monolithic builder did."""
    config = config or DatasetConfig()
    rng = random.Random(config.seed)
    allocator = PrefixAllocator()

    topology = generate_topology(config.topology)
    graph = topology.graph
    registry = build_registry(
        graph.ases, documented_fraction=config.documented_fraction, seed=config.seed
    )
    policies = _build_policies(topology, registry, config, rng, allocator)
    dispute_links, dispute_relaxed = _apply_peering_disputes(
        topology, policies, config, rng
    )
    leak_relaxed = _apply_gratuitous_leaks(topology, policies, config, rng)
    relaxed = dispute_relaxed + leak_relaxed

    vantage_asns = _select_vantage_points(topology, config, rng)
    collectors = default_collectors(
        vantage_asns,
        collectors_per_project=config.collectors_per_project,
        exports_local_pref_fraction=config.exports_local_pref_fraction,
    )

    propagation: Dict[AFI, PropagationResult] = {}
    archive = CollectorArchive()
    for afi in (AFI.IPV4, AFI.IPV6):
        simulator = PropagationSimulator(
            graph, policies, keep_ribs_for=vantage_asns
        )
        origins = _select_origins(topology, config, allocator, rng, afi)
        result = simulator.run(origins)
        propagation[afi] = result
        for collector in collectors:
            records = collector.collect(result, afi=afi)
            archive.add_collection(collector, config.snapshot_date, records)

    extraction = extract_from_archive(archive)  # builds the indexed store
    ground_truth = {
        AFI.IPV4: ToRAnnotation.from_graph(graph, AFI.IPV4),
        AFI.IPV6: ToRAnnotation.from_graph(graph, AFI.IPV6),
    }
    # The peering disputes removed some planted hybrid links' IPv6 side;
    # drop them from the ground-truth hybrid set if that happened.
    true_hybrid = {
        link: hybrid_type
        for link, hybrid_type in topology.hybrid_links.items()
        if ground_truth[AFI.IPV6].get_canonical(link).is_known
        and ground_truth[AFI.IPV4].get_canonical(link).is_known
    }

    return SyntheticSnapshot(
        config=config,
        topology=topology,
        registry=registry,
        policies=policies,
        collectors=collectors,
        archive=archive,
        observations=list(extraction.observations),
        store=extraction.store,
        extraction=extraction,
        ground_truth=ground_truth,
        true_hybrid_links=true_hybrid,
        relaxed_adjacencies=relaxed,
        dispute_links=dispute_links,
        propagation=propagation,
    )
