"""Writing and re-loading snapshot directories.

``repro snapshot --output DIR`` persists a synthetic snapshot as the
kind of file tree the paper's pipeline starts from::

    DIR/
      rib-dumps/                 # bgpdump-style text dumps, one per
        <collector>.rib.<date>.txt   # collector snapshot
        projects.json            # collector -> project sidecar
      ground-truth-asrel.txt     # extended dual-stack as-rel format
      irr/
        AS<asn>.txt              # community documentation per AS
      snapshot.json              # manifest (config summary, counts)

:func:`save_snapshot` writes that tree; :func:`load_snapshot` closes
the round trip — the archive, the IRR registry and the ground-truth
graph are reconstructed from the files alone, so ``section3`` and
``figure2`` can run from disk with results identical to the in-memory
snapshot that produced the directory (pinned by
``tests/test_snapshot_roundtrip.py``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.collectors.archive import CollectorArchive
from repro.core.annotation import ToRAnnotation
from repro.core.relationships import AFI
from repro.datasets.synthetic import SyntheticSnapshot
from repro.irr.registry import IRRRegistry
from repro.topology.graph import ASGraph
from repro.topology.serialization import read_dual_stack, write_dual_stack

MANIFEST_FILENAME = "snapshot.json"
GROUND_TRUTH_FILENAME = "ground-truth-asrel.txt"
RIB_DIRNAME = "rib-dumps"
IRR_DIRNAME = "irr"

#: Bump when the snapshot directory layout changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1

_IRR_FILE = re.compile(r"^AS(\d+)\.txt$")


class SnapshotFormatError(ValueError):
    """A snapshot directory that cannot be trusted.

    Raised when the manifest is missing or unreadable, written by an
    incompatible format version, or disagrees with what the member
    files actually contain (e.g. a truncated RIB dump).  Each message
    names the offending file and the expected-vs-found state, so a
    corrupted copy fails loudly instead of silently yielding a
    partial — and wrong — measurement.
    """


def save_snapshot(snapshot: SyntheticSnapshot, directory: Path) -> Dict[str, object]:
    """Write a snapshot directory; returns a summary for reporting."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dumps = snapshot.archive.save(directory / RIB_DIRNAME)
    write_dual_stack(snapshot.graph, directory / GROUND_TRUTH_FILENAME)
    irr_dir = directory / IRR_DIRNAME
    irr_dir.mkdir(exist_ok=True)
    for asn, lines in snapshot.registry.documentation_corpus().items():
        (irr_dir / f"AS{asn}.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "snapshot_date": snapshot.config.snapshot_date.isoformat(),
        "seed": snapshot.config.seed,
        "total_ases": snapshot.config.topology.total_ases,
        "vantage_points": snapshot.config.vantage_points,
        "collectors": snapshot.archive.collectors,
        "records": len(snapshot.archive),
        "documented_ases": len(snapshot.registry),
    }
    (directory / MANIFEST_FILENAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return {"dump_files": dumps, "manifest": manifest}


@dataclass
class LoadedSnapshot:
    """A snapshot reconstructed from a directory on disk.

    Carries exactly what the measurement side needs: the collector
    archive (extraction input), the IRR registry (inference input) and
    the ground-truth graph (validation input).  The manifest is kept
    for reporting and has been validated against the member files by
    :func:`load_snapshot`.
    """

    directory: Path
    archive: CollectorArchive
    registry: IRRRegistry
    ground_truth_graph: Optional[ASGraph] = None
    manifest: Dict[str, object] = field(default_factory=dict)

    def ground_truth_annotation(self, afi: AFI) -> ToRAnnotation:
        """Ground-truth relationship annotation for one plane."""
        if self.ground_truth_graph is None:
            raise ValueError(
                f"{self.directory} has no {GROUND_TRUTH_FILENAME}; "
                "ground truth is unavailable for this snapshot"
            )
        return ToRAnnotation.from_graph(self.ground_truth_graph, afi)


def _load_manifest(directory: Path) -> Dict[str, object]:
    """The validated manifest of a snapshot directory."""
    manifest_path = directory / MANIFEST_FILENAME
    if not manifest_path.exists():
        raise SnapshotFormatError(
            f"{directory} has no {MANIFEST_FILENAME} manifest; refusing to "
            "load an unversioned snapshot directory (re-create it with "
            "'repro snapshot --output')"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotFormatError(
            f"{manifest_path} is not valid JSON ({exc}); the manifest is "
            "corrupt or truncated"
        ) from exc
    if not isinstance(manifest, dict):
        raise SnapshotFormatError(f"{manifest_path} must contain a JSON object")
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{manifest_path} declares format_version {version!r}; this "
            f"build reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    return manifest


def _manifest_count(manifest: Dict[str, object], key: str, directory: Path):
    """An optional integer manifest field, type-checked loudly."""
    value = manifest.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise SnapshotFormatError(
            f"{directory / MANIFEST_FILENAME}: field {key!r} must be an "
            f"integer, got {value!r}"
        )
    return value


def _manifest_collectors(manifest: Dict[str, object], directory: Path):
    """The optional collector list, type-checked loudly."""
    value = manifest.get("collectors")
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SnapshotFormatError(
            f"{directory / MANIFEST_FILENAME}: field 'collectors' must be a "
            f"list of collector names, got {value!r}"
        )
    return value


def load_snapshot(directory: Path) -> LoadedSnapshot:
    """Load a snapshot directory written by :func:`save_snapshot`.

    The RIB dump directory and the manifest are required, and the
    member files are cross-checked against the manifest (record count,
    collector set, IRR coverage) so that a truncated or partially
    copied directory raises :class:`SnapshotFormatError` instead of
    silently producing a wrong measurement.  The ground truth remains
    optional — its absence only disables validation against it.
    """
    directory = Path(directory)
    rib_dir = directory / RIB_DIRNAME
    if not rib_dir.is_dir():
        raise FileNotFoundError(
            f"{directory} is not a snapshot directory (missing {RIB_DIRNAME}/)"
        )
    manifest = _load_manifest(directory)

    archive = CollectorArchive.load(rib_dir)
    if not len(archive):
        raise ValueError(f"{rib_dir} contains no parseable RIB dump files")
    expected_records = _manifest_count(manifest, "records", directory)
    if expected_records is not None and len(archive) != expected_records:
        raise SnapshotFormatError(
            f"{rib_dir} holds {len(archive)} records but the manifest "
            f"promises {expected_records}; a dump file is truncated or "
            "missing"
        )
    expected_collectors = _manifest_collectors(manifest, directory)
    if expected_collectors is not None and sorted(archive.collectors) != sorted(
        expected_collectors
    ):
        missing = sorted(set(expected_collectors) - set(archive.collectors))
        extra = sorted(set(archive.collectors) - set(expected_collectors))
        problems = []
        if missing:
            problems.append(f"missing dump files for {', '.join(missing)}")
        if extra:
            problems.append(f"unexpected dump files for {', '.join(extra)}")
        raise SnapshotFormatError(
            f"{rib_dir} does not match the manifest's collector set: "
            f"{'; '.join(problems)} (manifest promises "
            f"{sorted(expected_collectors)})"
        )

    registry = IRRRegistry()
    irr_dir = directory / IRR_DIRNAME
    if irr_dir.is_dir():
        for path in sorted(irr_dir.iterdir()):
            match = _IRR_FILE.match(path.name)
            if match is None:
                continue
            lines = path.read_text(encoding="utf-8").splitlines()
            registry.register_documentation(int(match.group(1)), lines)
    expected_documented = _manifest_count(manifest, "documented_ases", directory)
    if expected_documented is not None and len(registry) != expected_documented:
        raise SnapshotFormatError(
            f"{irr_dir} documents {len(registry)} ASes but the manifest "
            f"promises {expected_documented}; the IRR corpus is incomplete"
        )

    ground_truth = None
    ground_truth_path = directory / GROUND_TRUTH_FILENAME
    if ground_truth_path.exists():
        try:
            ground_truth = read_dual_stack(ground_truth_path)
        except ValueError as exc:
            raise SnapshotFormatError(
                f"{ground_truth_path} failed to parse ({exc}); the ground "
                "truth file is corrupt"
            ) from exc

    return LoadedSnapshot(
        directory=directory,
        archive=archive,
        registry=registry,
        ground_truth_graph=ground_truth,
        manifest=manifest,
    )
