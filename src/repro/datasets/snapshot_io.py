"""Writing and re-loading snapshot directories.

``repro snapshot --output DIR`` persists a synthetic snapshot as the
kind of file tree the paper's pipeline starts from::

    DIR/
      rib-dumps/                 # bgpdump-style text dumps, one per
        <collector>.rib.<date>.txt   # collector snapshot
        projects.json            # collector -> project sidecar
      ground-truth-asrel.txt     # extended dual-stack as-rel format
      irr/
        AS<asn>.txt              # community documentation per AS
      snapshot.json              # manifest (config summary, counts)

:func:`save_snapshot` writes that tree; :func:`load_snapshot` closes
the round trip — the archive, the IRR registry and the ground-truth
graph are reconstructed from the files alone, so ``section3`` and
``figure2`` can run from disk with results identical to the in-memory
snapshot that produced the directory (pinned by
``tests/test_snapshot_roundtrip.py``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.collectors.archive import CollectorArchive
from repro.core.annotation import ToRAnnotation
from repro.core.relationships import AFI
from repro.datasets.synthetic import SyntheticSnapshot
from repro.irr.registry import IRRRegistry
from repro.topology.graph import ASGraph
from repro.topology.serialization import read_dual_stack, write_dual_stack

MANIFEST_FILENAME = "snapshot.json"
GROUND_TRUTH_FILENAME = "ground-truth-asrel.txt"
RIB_DIRNAME = "rib-dumps"
IRR_DIRNAME = "irr"

_IRR_FILE = re.compile(r"^AS(\d+)\.txt$")


def save_snapshot(snapshot: SyntheticSnapshot, directory: Path) -> Dict[str, object]:
    """Write a snapshot directory; returns a summary for reporting."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dumps = snapshot.archive.save(directory / RIB_DIRNAME)
    write_dual_stack(snapshot.graph, directory / GROUND_TRUTH_FILENAME)
    irr_dir = directory / IRR_DIRNAME
    irr_dir.mkdir(exist_ok=True)
    for asn, lines in snapshot.registry.documentation_corpus().items():
        (irr_dir / f"AS{asn}.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    manifest = {
        "format_version": 1,
        "snapshot_date": snapshot.config.snapshot_date.isoformat(),
        "seed": snapshot.config.seed,
        "total_ases": snapshot.config.topology.total_ases,
        "vantage_points": snapshot.config.vantage_points,
        "collectors": snapshot.archive.collectors,
        "records": len(snapshot.archive),
        "documented_ases": len(snapshot.registry),
    }
    (directory / MANIFEST_FILENAME).write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return {"dump_files": dumps, "manifest": manifest}


@dataclass
class LoadedSnapshot:
    """A snapshot reconstructed from a directory on disk.

    Carries exactly what the measurement side needs: the collector
    archive (extraction input), the IRR registry (inference input) and
    the ground-truth graph (validation input).  The manifest is kept
    for reporting; it is ``{}`` for directories written before the
    manifest existed.
    """

    directory: Path
    archive: CollectorArchive
    registry: IRRRegistry
    ground_truth_graph: Optional[ASGraph] = None
    manifest: Dict[str, object] = field(default_factory=dict)

    def ground_truth_annotation(self, afi: AFI) -> ToRAnnotation:
        """Ground-truth relationship annotation for one plane."""
        if self.ground_truth_graph is None:
            raise ValueError(
                f"{self.directory} has no {GROUND_TRUTH_FILENAME}; "
                "ground truth is unavailable for this snapshot"
            )
        return ToRAnnotation.from_graph(self.ground_truth_graph, afi)


def load_snapshot(directory: Path) -> LoadedSnapshot:
    """Load a snapshot directory written by :func:`save_snapshot`.

    The RIB dump directory is required; the ground truth and the IRR
    corpus are optional (a registry-free load still supports extraction,
    but the Communities inference will find no documentation).
    """
    directory = Path(directory)
    rib_dir = directory / RIB_DIRNAME
    if not rib_dir.is_dir():
        raise FileNotFoundError(
            f"{directory} is not a snapshot directory (missing {RIB_DIRNAME}/)"
        )
    archive = CollectorArchive.load(rib_dir)
    if not len(archive):
        raise ValueError(f"{rib_dir} contains no parseable RIB dump files")

    registry = IRRRegistry()
    irr_dir = directory / IRR_DIRNAME
    if irr_dir.is_dir():
        for path in sorted(irr_dir.iterdir()):
            match = _IRR_FILE.match(path.name)
            if match is None:
                continue
            lines = path.read_text(encoding="utf-8").splitlines()
            registry.register_documentation(int(match.group(1)), lines)

    ground_truth = None
    ground_truth_path = directory / GROUND_TRUTH_FILENAME
    if ground_truth_path.exists():
        ground_truth = read_dual_stack(ground_truth_path)

    manifest: Dict[str, object] = {}
    manifest_path = directory / MANIFEST_FILENAME
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))

    return LoadedSnapshot(
        directory=directory,
        archive=archive,
        registry=registry,
        ground_truth_graph=ground_truth,
        manifest=manifest,
    )
