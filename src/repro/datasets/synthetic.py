"""End-to-end synthetic snapshot: the offline stand-in for "August 2010".

:func:`build_snapshot` wires every substrate together:

1. generate an Internet-like dual-stack topology with planted hybrid
   links (:mod:`repro.topology.generator`),
2. give a fraction of the ASes documented community dictionaries
   (:mod:`repro.irr`),
3. derive per-AS routing policies — LOCAL_PREF schemes, community
   tagging, traffic-engineering overrides and the IPv6 export
   relaxations that create valley paths (including the tier-1 peering
   dispute scenario the paper cites),
4. propagate routes for both address families
   (:mod:`repro.bgp.propagation`),
5. archive RIB snapshots at a set of RouteViews / RIPE-RIS style
   collectors (:mod:`repro.collectors`), and
6. extract the cleaned observations the measurement pipeline consumes.

The result, a :class:`SyntheticSnapshot`, also keeps the ground truth
(per-AFI annotations and the set of planted hybrid links) so experiments
can report detection quality — something impossible on the real data.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.paths import ExtractionResult
from repro.bgp.policy import LocalPrefScheme, RoutingPolicy, TrafficEngineeringOverride
from repro.bgp.prefixes import Prefix, PrefixAllocator
from repro.bgp.propagation import PropagationResult
from repro.collectors.archive import CollectorArchive
from repro.collectors.collector import Collector
from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, HybridType, Link, Relationship
from repro.core.store import ObservationStore
from repro.irr.registry import IRRRegistry
from repro.topology.generator import GeneratedTopology, TopologyConfig

#: LOCAL_PREF numbering conventions assigned round-robin-ish to ASes.
_LOCPREF_STYLES: Tuple[Tuple[int, int, int], ...] = (
    (300, 200, 100),
    (900, 800, 700),
    (130, 120, 110),
    (250, 170, 90),
    (400, 300, 200),
)


@dataclass
class DatasetConfig:
    """Configuration of the synthetic snapshot builder.

    The defaults produce a snapshot whose *shape* matches the paper's
    August-2010 measurements (coverage ≈ 70-85 %, hybrid share ≈ 10-15 %,
    valley share ≈ 5-20 %) at a size that builds in tens of seconds.
    """

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    seed: int = 42
    snapshot_date: _dt.date = _dt.date(2010, 8, 20)
    # IRR documentation coverage.
    documented_fraction: float = 0.70
    # Fraction of ASes that strip communities when exporting routes.
    strip_communities_fraction: float = 0.15
    # Fraction of multi-homed ASes with a traffic-engineering override.
    te_override_fraction: float = 0.10
    # Valley-path machinery.
    ipv6_peering_disputes: int = 1
    gratuitous_leak_fraction: float = 0.08
    # Collectors.
    vantage_points: int = 20
    collectors_per_project: int = 2
    exports_local_pref_fraction: float = 0.7
    # Which ASes originate prefixes (1.0 = every AS in the plane).
    origin_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "documented_fraction",
            "strip_communities_fraction",
            "te_override_fraction",
            "gratuitous_leak_fraction",
            "exports_local_pref_fraction",
            "origin_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.vantage_points < 1:
            raise ValueError("at least one vantage point is required")


@dataclass
class SyntheticSnapshot:
    """Everything a measurement or benchmark needs from one synthetic run.

    Attributes:
        config: The configuration the snapshot was built from.
        topology: The generated topology (including ground truth).
        registry: The IRR registry (community documentation).
        policies: The per-AS routing policies used for propagation.
        collectors: The collectors that archived the snapshot.
        archive: The archived table dumps.
        observations: Cleaned observations extracted from the archive.
        store: The indexed :class:`ObservationStore` over those
            observations — what the inference stages query.
        extraction: Extraction counters (records read, loops dropped ...).
        ground_truth: Per-AFI ground-truth annotations.
        true_hybrid_links: The hybrid links planted by the generator.
        relaxed_adjacencies: The (asn, neighbor) pairs whose IPv6 export
            was relaxed (peering-dispute bridges and gratuitous leaks).
        dispute_links: Tier-1 pairs that refuse to peer over IPv6.
        propagation: Per-AFI propagation results (RIBs pruned to the
            vantage points to bound memory).
    """

    config: DatasetConfig
    topology: GeneratedTopology
    registry: IRRRegistry
    policies: Dict[int, RoutingPolicy]
    collectors: List[Collector]
    archive: CollectorArchive
    observations: List[ObservedRoute]
    store: ObservationStore
    extraction: ExtractionResult
    ground_truth: Dict[AFI, ToRAnnotation]
    true_hybrid_links: Dict[Link, HybridType]
    relaxed_adjacencies: List[Tuple[int, int]]
    dispute_links: List[Link]
    propagation: Dict[AFI, PropagationResult]

    @property
    def graph(self):
        """The ground-truth AS graph."""
        return self.topology.graph

    def observations_for(self, afi: AFI) -> List[ObservedRoute]:
        """Observations restricted to one address family."""
        return list(self.store.by_afi[afi])

    def ground_truth_annotation(self, afi: AFI) -> ToRAnnotation:
        """Ground-truth relationship annotation for one plane."""
        return self.ground_truth[afi]


# ----------------------------------------------------------------------
# policy construction
# ----------------------------------------------------------------------
def _build_policies(
    topology: GeneratedTopology,
    registry: IRRRegistry,
    config: DatasetConfig,
    rng: random.Random,
    allocator: PrefixAllocator,
) -> Dict[int, RoutingPolicy]:
    graph = topology.graph
    policies: Dict[int, RoutingPolicy] = {}
    for asn in graph.ases:
        customer, peer, provider = _LOCPREF_STYLES[rng.randrange(len(_LOCPREF_STYLES))]
        scheme = LocalPrefScheme(customer=customer, peer=peer, provider=provider,
                                 sibling=(customer + peer) // 2)
        policy = RoutingPolicy(
            asn=asn,
            local_pref=scheme,
            tagger=registry.dictionary_for(asn),
            strip_communities_on_export=rng.random() < config.strip_communities_fraction,
        )
        policies[asn] = policy

    # Traffic-engineering overrides: a multi-homed AS de-prefers one of
    # its providers for a handful of prefixes.
    for asn in graph.ases:
        providers = graph.providers_of(asn, AFI.IPV4)
        if len(providers) < 2:
            continue
        if rng.random() >= config.te_override_fraction:
            continue
        neighbor = providers[rng.randrange(len(providers))]
        scheme = policies[asn].local_pref
        victim_prefixes = tuple(
            allocator.prefix(origin, afi)
            for origin, afi in (
                (rng.choice(graph.ases), AFI.IPV4),
                (rng.choice(graph.ases_in(AFI.IPV6) or graph.ases), AFI.IPV6),
            )
        )
        policies[asn].te_overrides.append(
            TrafficEngineeringOverride(
                neighbor=neighbor,
                local_pref=max(scheme.provider - 20, 10),
                action="lower-pref",
                prefixes=victim_prefixes,
            )
        )
    return policies


def _apply_peering_disputes(
    topology: GeneratedTopology,
    policies: Dict[int, RoutingPolicy],
    config: DatasetConfig,
    rng: random.Random,
) -> Tuple[List[Link], List[Tuple[int, int]]]:
    """Model IPv6 peering disputes between tier-1 ASes.

    For each dispute the IPv6 relationship of a tier-1 - tier-1 link is
    removed (the two refuse to interconnect for IPv6) and a tier-2 AS
    that buys IPv6 transit from both sides starts leaking routes between
    them (relaxed exports towards both providers), exactly the scenario
    the paper's footnote describes.  The leak keeps IPv6 reachable but
    produces valley paths with no valley-free alternative.
    """
    graph = topology.graph
    disputes: List[Link] = []
    relaxed: List[Tuple[int, int]] = []
    tier1 = topology.tier1
    candidates = [
        Link(a, b)
        for i, a in enumerate(tier1)
        for b in tier1[i + 1 :]
        if graph.has_link(a, b)
        and graph.relationship(a, b, AFI.IPV6).is_known
    ]
    rng.shuffle(candidates)
    for link in candidates[: config.ipv6_peering_disputes]:
        # Find a bridge: an AS buying IPv6 transit from both sides.
        bridge = None
        customers_a = set(graph.customers_of(link.a, AFI.IPV6))
        customers_b = set(graph.customers_of(link.b, AFI.IPV6))
        shared = sorted(customers_a & customers_b)
        if shared:
            bridge = shared[rng.randrange(len(shared))]
        if bridge is None:
            continue
        # The two tier-1s stop interconnecting for IPv6 (clearing the
        # relationship through the graph API keeps the indexes in sync).
        graph.set_relationship(link.a, link.b, AFI.IPV6, Relationship.UNKNOWN)
        disputes.append(link)
        # The bridge leaks between its providers (IPv6 only).
        for provider in (link.a, link.b):
            policies[bridge].add_relaxation(provider, AFI.IPV6)
            relaxed.append((bridge, provider))
    return disputes, relaxed


def _apply_gratuitous_leaks(
    topology: GeneratedTopology,
    policies: Dict[int, RoutingPolicy],
    config: DatasetConfig,
    rng: random.Random,
) -> List[Tuple[int, int]]:
    """Relax random IPv6 adjacencies that do not affect reachability.

    These model sloppy IPv6 policies (free transit over peering links,
    route leaks) and produce valley paths for which a valley-free
    alternative exists — the majority class in the paper's Section 3.
    """
    graph = topology.graph
    relaxed: List[Tuple[int, int]] = []
    candidates: List[Tuple[int, int]] = []
    for link in graph.links(AFI.IPV6):
        rel = graph.relationship(link.a, link.b, AFI.IPV6)
        # Leaks over peering links: either side may leak towards the other.
        if rel is Relationship.P2P:
            candidates.append((link.a, link.b))
            candidates.append((link.b, link.a))
    rng.shuffle(candidates)
    target = int(round(config.gratuitous_leak_fraction * len(candidates)))
    for asn, neighbor in candidates[:target]:
        policies[asn].add_relaxation(neighbor, AFI.IPV6)
        relaxed.append((asn, neighbor))
    return relaxed


# ----------------------------------------------------------------------
# vantage points and origins
# ----------------------------------------------------------------------
def _select_vantage_points(
    topology: GeneratedTopology, config: DatasetConfig, rng: random.Random
) -> List[int]:
    """Pick vantage ASes: dual-stack, biased towards well-connected ASes."""
    graph = topology.graph
    dual_stack = [asn for asn in graph.dual_stack_ases()]
    if not dual_stack:
        raise ValueError("the topology has no dual-stack AS to peer with collectors")
    ranked = sorted(dual_stack, key=lambda asn: -graph.degree(asn))
    core = ranked[: max(config.vantage_points // 2, 1)]
    rest = [asn for asn in ranked[len(core):]]
    rng.shuffle(rest)
    selected = (core + rest)[: config.vantage_points]
    return sorted(selected)


def _select_origins(
    topology: GeneratedTopology,
    config: DatasetConfig,
    allocator: PrefixAllocator,
    rng: random.Random,
    afi: AFI,
) -> Dict[Prefix, int]:
    graph = topology.graph
    ases = graph.ases_in(afi)
    if config.origin_fraction < 1.0:
        count = max(int(round(config.origin_fraction * len(ases))), 1)
        ases = sorted(rng.sample(ases, count))
    return {allocator.prefix(asn, afi): asn for asn in ases}


# ----------------------------------------------------------------------
# the builder
# ----------------------------------------------------------------------
def build_snapshot(
    config: Optional[DatasetConfig] = None,
    cache_dir=None,
    engine: str = "event",
    compression: str = "off",
    telemetry=None,
) -> SyntheticSnapshot:
    """Build a complete synthetic measurement snapshot.

    A thin composition of the staged pipeline
    (:mod:`repro.pipeline.stages`): the stages run in exactly the order
    the historical monolithic builder ran (frozen as
    :func:`repro.datasets.reference.reference_build_snapshot`, pinned by
    golden tests), so the result is bit-identical.  ``cache_dir``
    enables the on-disk artifact cache — a warm call skips every stage
    whose fingerprint is unchanged.  ``engine`` selects the propagation
    backend (see :mod:`repro.bgp.backends`); every engine must produce
    the same snapshot bit for bit.  ``telemetry`` forwards an optional
    :class:`~repro.telemetry.TelemetryConfig` to the pipeline (tracing
    is fingerprint-neutral, so the snapshot stays bit-identical).
    """
    # Imported here: repro.pipeline.stages imports this module's
    # private stage helpers, so a module-level import would be circular.
    from repro.pipeline.stages import PipelineConfig, PropagationConfig, run_pipeline

    pipeline_config = PipelineConfig(
        dataset=config or DatasetConfig(),
        propagation=PropagationConfig(engine=engine, compression=compression),
        telemetry=telemetry,
    )
    run = run_pipeline(pipeline_config, cache_dir=cache_dir, targets=("snapshot",))
    return run.value("snapshot")


def small_config(seed: int = 7) -> DatasetConfig:
    """A small configuration for tests: builds in a couple of seconds."""
    return DatasetConfig(
        topology=TopologyConfig(
            seed=seed,
            tier1_count=5,
            tier2_count=25,
            tier3_count=90,
        ),
        seed=seed,
        vantage_points=10,
    )


def paper_scale_config(seed: int = 2010) -> DatasetConfig:
    """The configuration used by the benchmark harness.

    Large enough for the statistics to be stable, small enough to build
    within a couple of minutes on a laptop.
    """
    return DatasetConfig(
        topology=TopologyConfig(
            seed=seed,
            tier1_count=9,
            tier2_count=80,
            tier3_count=360,
        ),
        seed=seed,
        vantage_points=24,
        collectors_per_project=3,
    )
