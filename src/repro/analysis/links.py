"""AS-link extraction and dual-stack matching.

The second stage of the measurement pipeline: from the per-family
observations, derive

* the set of links visible in the IPv4 plane,
* the set of links visible in the IPv6 plane, and
* their intersection — the *dual-stack* links on which hybrid
  relationships can exist at all (the paper's 7,618 links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.observations import ObservedRoute, unique_links
from repro.core.relationships import AFI, Link


@dataclass
class LinkInventory:
    """Links visible per address family and their intersection.

    Attributes:
        ipv4_links: Links seen in at least one IPv4 path.
        ipv6_links: Links seen in at least one IPv6 path.
    """

    ipv4_links: Set[Link] = field(default_factory=set)
    ipv6_links: Set[Link] = field(default_factory=set)

    @property
    def dual_stack_links(self) -> Set[Link]:
        """Links visible in both planes."""
        return self.ipv4_links & self.ipv6_links

    @property
    def ipv6_only_links(self) -> Set[Link]:
        """Links visible only in the IPv6 plane."""
        return self.ipv6_links - self.ipv4_links

    @property
    def ipv4_only_links(self) -> Set[Link]:
        """Links visible only in the IPv4 plane."""
        return self.ipv4_links - self.ipv6_links

    def links(self, afi: AFI) -> Set[Link]:
        """Links of one plane."""
        return self.ipv4_links if afi is AFI.IPV4 else self.ipv6_links

    def summary(self) -> Dict[str, int]:
        """Size summary used by reports."""
        return {
            "ipv4_links": len(self.ipv4_links),
            "ipv6_links": len(self.ipv6_links),
            "dual_stack_links": len(self.dual_stack_links),
            "ipv6_only_links": len(self.ipv6_only_links),
            "ipv4_only_links": len(self.ipv4_only_links),
        }


def build_link_inventory(observations: Iterable[ObservedRoute]) -> LinkInventory:
    """Build the per-plane link sets from a mixed set of observations.

    An :class:`~repro.core.store.ObservationStore` input copies the
    store's precomputed per-plane link sets instead of re-walking every
    path (the copies keep the inventory independently mutable).
    """
    from repro.core.store import ObservationStore

    if isinstance(observations, ObservationStore):
        return LinkInventory(
            ipv4_links=set(observations.links(AFI.IPV4)),
            ipv6_links=set(observations.links(AFI.IPV6)),
        )
    inventory = LinkInventory()
    for observation in observations:
        target = (
            inventory.ipv4_links
            if observation.afi is AFI.IPV4
            else inventory.ipv6_links
        )
        target.update(observation.links())
    return inventory


def links_of(observations: Iterable[ObservedRoute], afi: AFI) -> Set[Link]:
    """Links visible in the observations of one plane."""
    return unique_links(o for o in observations if o.afi is afi)


def endpoint_ases(links: Iterable[Link]) -> Set[int]:
    """All ASes appearing as an endpoint of the given links."""
    ases: Set[int] = set()
    for link in links:
        ases.add(link.a)
        ases.add(link.b)
    return ases


def links_between(links: Iterable[Link], ases: Iterable[int]) -> Set[Link]:
    """Links whose both endpoints belong to ``ases``.

    Used to restrict hybrid statistics to, e.g., tier-1/tier-2 core links
    when reproducing the paper's observation about where hybrid links
    live.
    """
    members = set(ases)
    return {link for link in links if link.a in members and link.b in members}
