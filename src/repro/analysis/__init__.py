"""Measurement pipeline: path/link extraction, statistics, reachability, reports."""

from repro.analysis.links import (
    LinkInventory,
    build_link_inventory,
    endpoint_ases,
    links_between,
    links_of,
)
from repro.analysis.partition import (
    ReachabilityPartitionReport,
    analyze_reachability,
    compare_relaxation,
)
from repro.analysis.paths import (
    ExtractionResult,
    ExtractionStats,
    distinct_paths,
    extract_from_archive,
    extract_observations,
    observation_from_record,
    paths_by_origin,
    store_from_records,
)
from repro.analysis.report import (
    format_series,
    format_summary,
    format_table,
    to_json,
    write_json_report,
)
from repro.analysis.stats import (
    Section3Artifacts,
    Section3Report,
    Section3Views,
    assemble_report,
    build_views,
    compute_section3,
    run_inference,
)

__all__ = [
    "LinkInventory",
    "build_link_inventory",
    "endpoint_ases",
    "links_between",
    "links_of",
    "ReachabilityPartitionReport",
    "analyze_reachability",
    "compare_relaxation",
    "ExtractionResult",
    "ExtractionStats",
    "distinct_paths",
    "extract_from_archive",
    "extract_observations",
    "observation_from_record",
    "paths_by_origin",
    "store_from_records",
    "format_series",
    "format_summary",
    "format_table",
    "to_json",
    "write_json_report",
    "Section3Artifacts",
    "Section3Report",
    "Section3Views",
    "assemble_report",
    "build_views",
    "compute_section3",
    "run_inference",
]
