"""Extracting clean AS paths from collector archives.

The first stage of the measurement pipeline: turn archived
:class:`~repro.collectors.mrt.TableDumpRecord` lines into
:class:`~repro.core.observations.ObservedRoute` objects, applying the
standard hygiene steps (prepending collapse, loop filtering,
de-duplication) and keeping per-stage counters so the data-reduction
story of a run can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.collectors.archive import CollectorArchive
from repro.collectors.mrt import TableDumpRecord
from repro.core.observations import ObservedRoute, clean_raw_path
from repro.core.relationships import AFI


@dataclass
class ExtractionStats:
    """Counters describing one extraction run.

    Attributes:
        records: Raw records examined.
        looped_paths: Records discarded because the cleaned path still
            contained a loop.
        observations: Observations produced.
        distinct_paths: Distinct AS paths among the observations.
    """

    records: int = 0
    looped_paths: int = 0
    observations: int = 0
    distinct_paths: int = 0


@dataclass
class ExtractionResult:
    """Observations plus the counters of the extraction that produced them."""

    observations: List[ObservedRoute]
    stats: ExtractionStats

    def __iter__(self) -> Iterator[ObservedRoute]:
        return iter(self.observations)

    def __len__(self) -> int:
        return len(self.observations)


def observation_from_record(record: TableDumpRecord) -> Optional[ObservedRoute]:
    """Convert one table-dump record into an observation.

    Returns ``None`` when the path contains a loop after prepending is
    collapsed (such paths are artifacts and are dropped, as the paper's
    pipeline does).
    """
    cleaned = clean_raw_path(record.as_path.hops)
    if cleaned is None:
        return None
    # The archived path starts with the vantage AS; defensively re-anchor
    # it in case a malformed record slipped through.
    vantage = cleaned[0]
    if vantage != record.peer_as:
        if record.peer_as in cleaned:
            return None
        cleaned = (record.peer_as,) + cleaned
        vantage = record.peer_as
    return ObservedRoute(
        path=cleaned,
        prefix=record.prefix,
        vantage=vantage,
        communities=record.communities,
        local_pref=record.local_pref if record.local_pref > 0 else None,
        collector=record.collector,
    )


def extract_observations(
    records: Iterable[TableDumpRecord],
    afi: Optional[AFI] = None,
    deduplicate: bool = False,
) -> ExtractionResult:
    """Extract observations from raw records.

    ``deduplicate=True`` keeps a single observation per (vantage, prefix,
    path) triple, which is useful when several collectors archive the
    same feed.
    """
    stats = ExtractionStats()
    observations: List[ObservedRoute] = []
    seen: Set[Tuple[int, str, Tuple[int, ...]]] = set()
    distinct_paths: Set[Tuple[int, ...]] = set()
    for record in records:
        if afi is not None and record.afi is not afi:
            continue
        stats.records += 1
        observation = observation_from_record(record)
        if observation is None:
            stats.looped_paths += 1
            continue
        if deduplicate:
            key = (observation.vantage, str(observation.prefix), observation.path)
            if key in seen:
                continue
            seen.add(key)
        observations.append(observation)
        distinct_paths.add(observation.path)
    stats.observations = len(observations)
    stats.distinct_paths = len(distinct_paths)
    return ExtractionResult(observations=observations, stats=stats)


def extract_from_archive(
    archive: CollectorArchive,
    afi: Optional[AFI] = None,
    deduplicate: bool = True,
) -> ExtractionResult:
    """Extract observations from every record of an archive."""
    return extract_observations(archive.records(afi=afi), afi=afi, deduplicate=deduplicate)


def distinct_paths(
    observations: Iterable[ObservedRoute], afi: Optional[AFI] = None
) -> List[Tuple[int, ...]]:
    """The distinct AS paths among the observations (sorted)."""
    paths = {
        observation.path
        for observation in observations
        if afi is None or observation.afi is afi
    }
    return sorted(paths)


def paths_by_origin(
    observations: Iterable[ObservedRoute], afi: Optional[AFI] = None
) -> Dict[int, List[Tuple[int, ...]]]:
    """Distinct paths grouped by the origin AS they lead to."""
    grouped: Dict[int, Set[Tuple[int, ...]]] = {}
    for observation in observations:
        if afi is not None and observation.afi is not afi:
            continue
        grouped.setdefault(observation.origin_as, set()).add(observation.path)
    return {origin: sorted(paths) for origin, paths in grouped.items()}
