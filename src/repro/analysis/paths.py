"""Extracting clean AS paths from collector archives.

The first stage of the measurement pipeline: turn archived
:class:`~repro.collectors.mrt.TableDumpRecord` lines into
:class:`~repro.core.observations.ObservedRoute` objects, applying the
standard hygiene steps (prepending collapse, loop filtering,
de-duplication) and keeping per-stage counters so the data-reduction
story of a run can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.bgp.prefixes import Prefix
from repro.collectors.archive import CollectorArchive
from repro.collectors.mrt import TableDumpRecord
from repro.core.observations import ObservedRoute, clean_raw_path
from repro.core.relationships import AFI
from repro.core.store import ObservationStore


@dataclass
class ExtractionStats:
    """Counters describing one extraction run.

    Attributes:
        records: Raw records examined.
        looped_paths: Records discarded because the cleaned path still
            contained a loop.
        observations: Observations produced.
        distinct_paths: Distinct AS paths among the observations.
    """

    records: int = 0
    looped_paths: int = 0
    observations: int = 0
    distinct_paths: int = 0


@dataclass
class ExtractionResult:
    """Observations plus the counters of the extraction that produced them.

    ``store`` carries the indexed
    :class:`~repro.core.store.ObservationStore` when the extraction was
    asked to build one (:func:`store_from_records`,
    :func:`extract_from_archive`); plain :func:`extract_observations`
    leaves it ``None``.
    """

    observations: List[ObservedRoute]
    stats: ExtractionStats
    store: Optional[ObservationStore] = None

    def __iter__(self) -> Iterator[ObservedRoute]:
        return iter(self.observations)

    def __len__(self) -> int:
        return len(self.observations)


def observation_from_record(record: TableDumpRecord) -> Optional[ObservedRoute]:
    """Convert one table-dump record into an observation.

    Returns ``None`` when the path contains a loop after prepending is
    collapsed (such paths are artifacts and are dropped, as the paper's
    pipeline does).
    """
    cleaned = clean_raw_path(record.as_path.hops)
    if cleaned is None:
        return None
    # The archived path starts with the vantage AS; defensively re-anchor
    # it in case a malformed record slipped through.
    vantage = cleaned[0]
    if vantage != record.peer_as:
        if record.peer_as in cleaned:
            return None
        cleaned = (record.peer_as,) + cleaned
        vantage = record.peer_as
    # clean_raw_path proved the path non-empty and loop-free and the
    # vantage is anchored above, so the validating constructor is skipped.
    return ObservedRoute.trusted(
        path=cleaned,
        prefix=record.prefix,
        vantage=vantage,
        communities=record.communities,
        local_pref=record.local_pref,
        collector=record.collector,
    )


def _merge_duplicate(kept: ObservedRoute, duplicate: ObservedRoute) -> ObservedRoute:
    """Combine duplicate observations of one (vantage, prefix, path) route.

    Duplicates arise when several collectors archive the same feed, and
    their attribute sets can differ (a collector may strip communities,
    a feed may not export LOCAL_PREF to one session).  Attributes the
    kept (first-seen) copy already carries win; attributes it lacks are
    filled from the duplicate, so no LOCAL_PREF or communities evidence
    is lost regardless of arrival order.  Returns ``kept`` itself when
    the duplicate adds nothing.
    """
    local_pref = kept.local_pref if kept.local_pref is not None else duplicate.local_pref
    communities = kept.communities if kept.communities else duplicate.communities
    if local_pref == kept.local_pref and communities == kept.communities:
        return kept
    return ObservedRoute.trusted(
        path=kept.path,
        prefix=kept.prefix,
        vantage=kept.vantage,
        communities=communities,
        local_pref=local_pref,
        collector=kept.collector,
    )


def _extract(
    records: Iterable[TableDumpRecord],
    afi: Optional[AFI],
    deduplicate: bool,
    store: Optional[ObservationStore],
) -> ExtractionResult:
    """The single extraction loop behind both public entry points.

    One copy of the extraction semantics (AFI filter, path cleaning,
    vantage re-anchoring, attribute-merging deduplication); when ``store`` is
    given, every accepted observation is additionally indexed into it
    inline (mirroring :meth:`ObservationStore._build`), so extraction
    and index building are one streaming pass.  The per-record body of
    :func:`observation_from_record` is inlined because the call overhead
    is measurable at paper scale.
    """
    stats = ExtractionStats()
    seen: Dict[Tuple[int, Prefix, Tuple[int, ...]], int] = {}
    distinct_paths: Set[Tuple[int, ...]] = set()
    records_seen = looped = 0
    replaced = False
    trusted = ObservedRoute.trusted
    ipv4 = AFI.IPV4
    if store is not None:
        observations = store.observations
        by_vantage = store.by_vantage
        with_local_pref = store.with_local_pref
        with_communities = store.with_communities
        path_links = store._path_links
        links_of = store._links_of
        v4_obs, v6_obs = store.by_afi[ipv4], store.by_afi[AFI.IPV6]
        v4_distinct, v6_distinct = store._distinct[ipv4], store._distinct[AFI.IPV6]
        v4_links, v6_links = store._links[ipv4], store._links[AFI.IPV6]
        v4_seen: Set[Tuple[int, ...]] = set()
        v6_seen: Set[Tuple[int, ...]] = set()
    else:
        observations = []
    for record in records:
        if afi is not None and record.afi is not afi:
            continue
        records_seen += 1
        cleaned = clean_raw_path(record.as_path.hops)
        if cleaned is None:
            looped += 1
            continue
        vantage = cleaned[0]
        if vantage != record.peer_as:
            if record.peer_as in cleaned:
                looped += 1
                continue
            cleaned = (record.peer_as,) + cleaned
            vantage = record.peer_as
        observation = trusted(
            path=cleaned,
            prefix=record.prefix,
            vantage=vantage,
            communities=record.communities,
            local_pref=record.local_pref,
            collector=record.collector,
        )
        if deduplicate:
            key = (vantage, record.prefix, cleaned)
            index = seen.get(key)
            if index is not None:
                kept = observations[index]
                merged = _merge_duplicate(kept, observation)
                if merged is not kept:
                    observations[index] = merged
                    replaced = True
                continue
            seen[key] = len(observations)
        observations.append(observation)
        distinct_paths.add(cleaned)
        if store is None:
            continue
        # Inline indexing (mirrors ObservationStore._build).
        if observation.afi is ipv4:
            obs_list, seen_plane = v4_obs, v4_seen
            distinct, plane_links = v4_distinct, v4_links
        else:
            obs_list, seen_plane = v6_obs, v6_seen
            distinct, plane_links = v6_distinct, v6_links
        obs_list.append(observation)
        vantage_list = by_vantage.get(vantage)
        if vantage_list is None:
            by_vantage[vantage] = [observation]
        else:
            vantage_list.append(observation)
        links = path_links.get(cleaned)
        if links is None:
            links = path_links[cleaned] = links_of(cleaned)
        if cleaned not in seen_plane:
            seen_plane.add(cleaned)
            distinct.append(cleaned)
            plane_links.update(links)
        if observation.local_pref is not None:
            with_local_pref.append(observation)
        if observation.communities:
            with_communities.append(observation)
    stats.records = records_seen
    stats.looped_paths = looped
    stats.observations = len(observations)
    stats.distinct_paths = len(distinct_paths)
    if store is not None and replaced:
        # A richer duplicate displaced an observation that the streaming
        # indexes already reference; rebuild them from the final list.
        store = ObservationStore(observations)
    return ExtractionResult(observations=observations, stats=stats, store=store)


def extract_observations(
    records: Iterable[TableDumpRecord],
    afi: Optional[AFI] = None,
    deduplicate: bool = False,
) -> ExtractionResult:
    """Extract observations from raw records.

    ``deduplicate=True`` keeps a single observation per (vantage, prefix,
    path) triple, which is useful when several collectors archive the
    same feed.  When duplicates collide their attributes are merged — a
    collector whose feed strips LOCAL_PREF or communities must not
    shadow a copy of the same route that carries them, whichever arrives
    first.  The surviving observation keeps the position (and the
    collector attribution) of the first copy seen, so ordering stays
    deterministic.
    """
    return _extract(records, afi, deduplicate, store=None)


def store_from_records(
    records: Iterable[TableDumpRecord],
    afi: Optional[AFI] = None,
    deduplicate: bool = True,
) -> ExtractionResult:
    """Extract observations and index them in one streaming pass.

    The records iterator is consumed exactly once (collectors and
    archives can therefore feed it lazily) and every accepted
    observation is indexed into the
    :class:`~repro.core.store.ObservationStore` as it is extracted,
    saving a second full pass over the observation list.  The one case
    the streaming indexes cannot express — a duplicate contributing
    attributes to an already-indexed observation — falls back to
    rebuilding the store from the final list (``tests/test_store.py``
    pins the two constructions to identical indexes).  The store is
    attached to the returned :class:`ExtractionResult`.
    """
    return _extract(records, afi, deduplicate, store=ObservationStore(()))


def extract_from_archive(
    archive: CollectorArchive,
    afi: Optional[AFI] = None,
    deduplicate: bool = True,
) -> ExtractionResult:
    """Extract and index the observations of every record of an archive."""
    return store_from_records(archive.records(afi=afi), afi=afi, deduplicate=deduplicate)


def distinct_paths(
    observations: Iterable[ObservedRoute], afi: Optional[AFI] = None
) -> List[Tuple[int, ...]]:
    """The distinct AS paths among the observations (sorted)."""
    if isinstance(observations, ObservationStore):
        return sorted(observations.distinct_paths(afi))
    paths = {
        observation.path
        for observation in observations
        if afi is None or observation.afi is afi
    }
    return sorted(paths)


def paths_by_origin(
    observations: Iterable[ObservedRoute], afi: Optional[AFI] = None
) -> Dict[int, List[Tuple[int, ...]]]:
    """Distinct paths grouped by the origin AS they lead to."""
    if isinstance(observations, ObservationStore):
        # Copy the cached lists: legacy callers get fresh, safely
        # mutable lists and must not corrupt the store's cache.
        return {
            origin: list(paths)
            for origin, paths in observations.paths_by_origin(afi).items()
        }
    grouped: Dict[int, Set[Tuple[int, ...]]] = {}
    for observation in observations:
        if afi is not None and observation.afi is not afi:
            continue
        grouped.setdefault(observation.origin_as, set()).add(observation.path)
    return {origin: sorted(paths) for origin, paths in grouped.items()}
