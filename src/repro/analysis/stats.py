"""Section-3 statistics: the numbers the paper reports inline.

:func:`compute_section3` runs the full measurement pipeline over a set of
observations — coverage of the Communities/LocPrf inference, hybrid-link
detection, hybrid path visibility, valley-path analysis — and packages
the results as a :class:`Section3Report` whose fields map one-to-one to
the statistics of Section 3 of the paper (see the experiment table in
DESIGN.md).

The computation is decomposed into three stage functions the staged
pipeline (:mod:`repro.pipeline.stages`) caches individually:

* :func:`run_inference` — the Communities/LocPrf combined inference,
* :func:`build_views` — link inventory, hybrid detection, visibility
  index and valley analysis (:class:`Section3Views`),
* :func:`assemble_report` — the cheap final report assembly.

:func:`compute_section3` is their thin, cache-free composition and
produces results bit-identical to the pre-decomposition monolith (the
golden tests pin this against the frozen references).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.links import LinkInventory, build_link_inventory
from repro.core.combined_inference import CombinedInference, CombinedInferenceResult
from repro.core.hybrid import HybridDetectionReport, HybridDetector
from repro.core.observations import ObservedRoute, group_by_afi, unique_paths
from repro.core.relationships import AFI, HybridType, Link
from repro.core.store import ObservationStore
from repro.core.valley import ValleyAnalysisReport, ValleyAnalyzer
from repro.core.visibility import VisibilityIndex, build_visibility_index
from repro.irr.registry import IRRRegistry


@dataclass
class Section3Report:
    """All Section-3 statistics for one snapshot.

    Attribute names follow the experiment ids used in DESIGN.md.
    """

    # S3.1 / S3.2 / S3.3 — raw visibility counts.
    ipv6_paths: int = 0
    ipv6_links: int = 0
    ipv4_links: int = 0
    dual_stack_links: int = 0
    # S3.4 — inference coverage.
    ipv6_links_with_relationship: int = 0
    ipv6_coverage: float = 0.0
    dual_stack_links_with_relationship: int = 0
    dual_stack_coverage: float = 0.0
    # S3.5 / S3.6 — hybrid links.
    hybrid_links: int = 0
    hybrid_fraction: float = 0.0
    hybrid_share_peer4_transit6: float = 0.0
    hybrid_share_peer6_transit4: float = 0.0
    hybrid_share_transit_reversed: float = 0.0
    # S3.7 — path visibility of hybrid links.
    paths_crossing_hybrid: int = 0
    fraction_paths_crossing_hybrid: float = 0.0
    # S3.8 / S3.9 — valley paths.
    valley_paths: int = 0
    valley_fraction: float = 0.0
    reachability_valley_paths: int = 0
    reachability_valley_fraction: float = 0.0

    def rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows mirroring how the paper reports them."""
        return [
            ("IPv6 AS paths", f"{self.ipv6_paths}"),
            ("IPv6 AS links", f"{self.ipv6_links}"),
            ("IPv4/IPv6 (dual-stack) links", f"{self.dual_stack_links}"),
            (
                "IPv6 links with relationship",
                f"{self.ipv6_links_with_relationship} ({self.ipv6_coverage:.0%})",
            ),
            (
                "dual-stack links with relationship",
                f"{self.dual_stack_links_with_relationship} ({self.dual_stack_coverage:.0%})",
            ),
            ("hybrid links", f"{self.hybrid_links} ({self.hybrid_fraction:.0%})"),
            (
                "hybrid: p2p IPv4 / transit IPv6",
                f"{self.hybrid_share_peer4_transit6:.0%}",
            ),
            (
                "hybrid: p2p IPv6 / transit IPv4",
                f"{self.hybrid_share_peer6_transit4:.0%}",
            ),
            (
                "hybrid: reversed transit",
                f"{self.hybrid_share_transit_reversed:.0%}",
            ),
            (
                "IPv6 paths crossing a hybrid link",
                f"{self.paths_crossing_hybrid} ({self.fraction_paths_crossing_hybrid:.0%})",
            ),
            ("IPv6 valley paths", f"{self.valley_paths} ({self.valley_fraction:.0%})"),
            (
                "valley paths needed for reachability",
                f"{self.reachability_valley_paths} ({self.reachability_valley_fraction:.0%})",
            ),
        ]

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric dictionary (for JSON reports and benchmarks)."""
        return {
            "ipv6_paths": self.ipv6_paths,
            "ipv6_links": self.ipv6_links,
            "ipv4_links": self.ipv4_links,
            "dual_stack_links": self.dual_stack_links,
            "ipv6_links_with_relationship": self.ipv6_links_with_relationship,
            "ipv6_coverage": self.ipv6_coverage,
            "dual_stack_links_with_relationship": self.dual_stack_links_with_relationship,
            "dual_stack_coverage": self.dual_stack_coverage,
            "hybrid_links": self.hybrid_links,
            "hybrid_fraction": self.hybrid_fraction,
            "hybrid_share_peer4_transit6": self.hybrid_share_peer4_transit6,
            "hybrid_share_peer6_transit4": self.hybrid_share_peer6_transit4,
            "hybrid_share_transit_reversed": self.hybrid_share_transit_reversed,
            "paths_crossing_hybrid": self.paths_crossing_hybrid,
            "fraction_paths_crossing_hybrid": self.fraction_paths_crossing_hybrid,
            "valley_paths": self.valley_paths,
            "valley_fraction": self.valley_fraction,
            "reachability_valley_paths": self.reachability_valley_paths,
            "reachability_valley_fraction": self.reachability_valley_fraction,
        }


@dataclass
class Section3Artifacts:
    """Intermediate objects produced while computing the report.

    Keeping them around lets the examples and benchmarks reuse the heavy
    steps (inference, visibility index) without recomputation.
    """

    report: Section3Report
    inventory: LinkInventory
    inference: CombinedInferenceResult
    hybrid: HybridDetectionReport
    visibility: VisibilityIndex
    valley: ValleyAnalysisReport


@dataclass
class Section3Views:
    """The derived per-snapshot views the report is assembled from.

    One cacheable unit in the staged pipeline: everything downstream of
    the inference that re-reads the observations (inventory, hybrid
    detection, visibility index, valley analysis), plus the distinct
    IPv6 path count.
    """

    ipv6_path_count: int
    inventory: LinkInventory
    hybrid: HybridDetectionReport
    visibility: VisibilityIndex
    valley: ValleyAnalysisReport


def run_inference(
    observations: Iterable[ObservedRoute],
    registry: IRRRegistry,
    engine: Optional[CombinedInference] = None,
) -> CombinedInferenceResult:
    """Stage: run the Communities/LocPrf combined inference."""
    engine = engine or CombinedInference(registry)
    return engine.infer(observations)


def build_views(
    observations: Iterable[ObservedRoute],
    result: CombinedInferenceResult,
) -> Section3Views:
    """Stage: build every observation-derived view the report needs.

    ``observations`` may be a plain list (the legacy path) or an
    :class:`~repro.core.store.ObservationStore`; with a store every view
    queries the shared indexes instead of re-scanning, producing
    identical results.
    """
    if isinstance(observations, ObservationStore):
        ipv6_observations: Iterable[ObservedRoute] = observations
        ipv6_path_count = observations.distinct_path_count(AFI.IPV6)
    else:
        observations = list(observations)
        by_afi = group_by_afi(observations)
        ipv6_observations = by_afi[AFI.IPV6]
        ipv6_path_count = len(unique_paths(ipv6_observations))
    inventory = build_link_inventory(observations)

    # S3.5 / S3.6 — hybrid detection over the visible dual-stack links.
    detector = HybridDetector(
        result.annotation(AFI.IPV4), result.annotation(AFI.IPV6)
    )
    if isinstance(observations, ObservationStore):
        hybrid_report = detector.detect_visible(observations)
    else:
        hybrid_report = detector.detect(inventory.dual_stack_links)

    # S3.7 — visibility of links in the IPv6 paths.
    visibility = build_visibility_index(ipv6_observations, afi=AFI.IPV6)

    # S3.8 / S3.9 — valley analysis of the IPv6 paths.
    analyzer = ValleyAnalyzer(result.annotation(AFI.IPV6))
    valley_report = analyzer.analyze(ipv6_observations, afi=AFI.IPV6)

    return Section3Views(
        ipv6_path_count=ipv6_path_count,
        inventory=inventory,
        hybrid=hybrid_report,
        visibility=visibility,
        valley=valley_report,
    )


def assemble_report(
    views: Section3Views, result: CombinedInferenceResult
) -> Section3Report:
    """Stage: assemble the flat Section-3 report from the views."""
    inventory = views.inventory
    report = Section3Report()
    report.ipv6_paths = views.ipv6_path_count
    report.ipv6_links = len(inventory.ipv6_links)
    report.ipv4_links = len(inventory.ipv4_links)
    report.dual_stack_links = len(inventory.dual_stack_links)

    # S3.4 — coverage.
    ipv6_annotation = result.annotation(AFI.IPV6)
    annotated_ipv6 = {
        link for link in inventory.ipv6_links if ipv6_annotation.get_canonical(link).is_known
    }
    report.ipv6_links_with_relationship = len(annotated_ipv6)
    report.ipv6_coverage = (
        len(annotated_ipv6) / report.ipv6_links if report.ipv6_links else 0.0
    )
    dual_coverage = result.dual_stack_coverage(inventory.dual_stack_links)
    report.dual_stack_links_with_relationship = dual_coverage.annotated_links
    report.dual_stack_coverage = dual_coverage.fraction

    hybrid_report = views.hybrid
    report.hybrid_links = len(hybrid_report.hybrid_links)
    report.hybrid_fraction = hybrid_report.hybrid_fraction
    report.hybrid_share_peer4_transit6 = hybrid_report.type_share(HybridType.PEER4_TRANSIT6)
    report.hybrid_share_peer6_transit4 = hybrid_report.type_share(HybridType.PEER6_TRANSIT4)
    report.hybrid_share_transit_reversed = hybrid_report.type_share(
        HybridType.TRANSIT_REVERSED
    )

    hybrid_links = hybrid_report.hybrid_link_set()
    report.paths_crossing_hybrid = views.visibility.paths_crossing_any(hybrid_links)
    report.fraction_paths_crossing_hybrid = views.visibility.fraction_crossing_any(
        hybrid_links
    )

    report.valley_paths = views.valley.valley_count
    report.valley_fraction = views.valley.valley_fraction
    report.reachability_valley_paths = len(views.valley.reachability_motivated)
    report.reachability_valley_fraction = views.valley.reachability_fraction
    return report


def compute_section3(
    observations: Iterable[ObservedRoute],
    registry: IRRRegistry,
    inference: Optional[CombinedInference] = None,
) -> Section3Artifacts:
    """Compute every Section-3 statistic for a set of observations.

    ``observations`` may be a plain iterable (the legacy list path) or
    an :class:`~repro.core.store.ObservationStore`; with a store every
    stage queries the shared indexes instead of re-scanning the list,
    producing identical statistics.

    This is the thin, cache-free composition of the three stage
    functions; the staged pipeline (:mod:`repro.pipeline`) runs the same
    functions with per-stage artifact caching.
    """
    if not isinstance(observations, ObservationStore):
        observations = list(observations)
    result = run_inference(observations, registry, inference)
    views = build_views(observations, result)
    report = assemble_report(views, result)
    return Section3Artifacts(
        report=report,
        inventory=views.inventory,
        inference=result,
        hybrid=views.hybrid,
        visibility=views.visibility,
        valley=views.valley,
    )
