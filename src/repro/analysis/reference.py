"""Frozen seed implementation of the extraction + inference pipeline.

The measurement-side counterpart of :mod:`repro.bgp.reference`: this
module preserves the *algorithmic shape* the pipeline had before the
:class:`~repro.core.store.ObservationStore` overhaul, so the tracked
benchmark (``benchmarks/run_benchmarks.py``) can keep reporting an
optimized-vs-seed speedup on identical inputs.

What is frozen here (one full re-scan of the observation list per
stage, exactly as the seed did):

* extraction through the *validating* ``ObservedRoute`` constructor and
  string-keyed deduplication,
* communities vote collection with a registry translation per community
  occurrence and a fresh ``Link`` per vote,
* LocPrf calibration and application as two independent passes, each
  re-evaluating the traffic-engineering filter per route,
* per-observation link enumeration for the inventory, the coverage
  denominators and the visibility index, and
* valley validation through :func:`repro.core.valley.validate_path` for
  every distinct path.

What is *not* frozen: shared substrate (``Prefix`` caching, the
relationship enums, the valley-free BFS, the vote tuple type) — the
same conservative-denominator convention ``repro.bgp.reference`` uses.
The collector-layer semantics fixed in the same PR (optional
LOCAL_PREF, richer-copy deduplication) are retained, not reverted:
the reference must produce *identical results* to the live pipeline so
the benchmark can assert equality before reporting a speedup.

This module must not be "optimized" — it exists to stay slow in the
same way the seed was slow.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.links import LinkInventory
from repro.analysis.paths import ExtractionResult, ExtractionStats, _merge_duplicate
from repro.analysis.stats import Section3Report
from repro.collectors.archive import CollectorArchive
from repro.collectors.mrt import TableDumpRecord
from repro.core.annotation import ToRAnnotation
from repro.core.communities_inference import RelationshipVote
from repro.core.hybrid import HybridDetector
from repro.core.locpref_inference import LocPrefMapping
from repro.core.observations import ObservedRoute, clean_raw_path
from repro.core.relationships import (
    AFI,
    HybridType,
    Link,
    Relationship,
    RelationshipSource,
    majority_relationship,
)
from repro.core.valley import PathValidity, ValleyAnalyzer, ValleyReason, validate_path
from repro.core.visibility import VisibilityIndex, build_visibility_index
from repro.irr.registry import IRRRegistry


# ----------------------------------------------------------------------
# extraction (seed shape: validating constructor, string dedup keys)
# ----------------------------------------------------------------------
def reference_extract_observations(
    records: Iterable[TableDumpRecord],
    afi: Optional[AFI] = None,
    deduplicate: bool = True,
) -> ExtractionResult:
    """Seed extraction loop; results identical to the live extraction."""
    stats = ExtractionStats()
    observations: List[ObservedRoute] = []
    seen: Dict[Tuple[int, str, Tuple[int, ...]], int] = {}
    distinct: Set[Tuple[int, ...]] = set()
    for record in records:
        if afi is not None and record.afi is not afi:
            continue
        stats.records += 1
        cleaned = clean_raw_path(record.as_path.hops)
        if cleaned is None:
            stats.looped_paths += 1
            continue
        vantage = cleaned[0]
        if vantage != record.peer_as:
            if record.peer_as in cleaned:
                stats.looped_paths += 1
                continue
            cleaned = (record.peer_as,) + cleaned
            vantage = record.peer_as
        observation = ObservedRoute(
            path=cleaned,
            prefix=record.prefix,
            vantage=vantage,
            communities=record.communities,
            local_pref=record.local_pref,
            collector=record.collector,
        )
        if deduplicate:
            key = (observation.vantage, str(observation.prefix), observation.path)
            index = seen.get(key)
            if index is not None:
                observations[index] = _merge_duplicate(observations[index], observation)
                continue
            seen[key] = len(observations)
        observations.append(observation)
        distinct.add(observation.path)
    stats.observations = len(observations)
    stats.distinct_paths = len(distinct)
    return ExtractionResult(observations=observations, stats=stats)


# ----------------------------------------------------------------------
# communities inference (seed shape: one registry translation per
# community occurrence, one Link per vote, no memoization)
# ----------------------------------------------------------------------
def _reference_collect_votes(
    observations: List[ObservedRoute], registry: IRRRegistry
) -> Dict[Tuple[Link, AFI], List[RelationshipVote]]:
    grouped: Dict[Tuple[Link, AFI], List[RelationshipVote]] = defaultdict(list)
    for route in observations:
        for community in route.communities:
            tagger = community.asn
            learned_from = route.next_hop_of(tagger)
            if learned_from is None:
                continue
            relationship = registry.relationship_for(community)
            if relationship is None or not relationship.is_known:
                continue
            link = Link(tagger, learned_from)
            canonical = relationship if link.a == tagger else relationship.inverse
            grouped[(link, route.afi)].append(
                RelationshipVote(
                    link=link,
                    afi=route.afi,
                    relationship=canonical,
                    tagger=tagger,
                    observed_from=route.vantage,
                )
            )
    return dict(grouped)


def _reference_communities_annotations(
    observations: List[ObservedRoute], registry: IRRRegistry
) -> Dict[AFI, ToRAnnotation]:
    votes = _reference_collect_votes(observations, registry)
    annotations = {
        AFI.IPV4: ToRAnnotation(AFI.IPV4, source=RelationshipSource.COMMUNITIES),
        AFI.IPV6: ToRAnnotation(AFI.IPV6, source=RelationshipSource.COMMUNITIES),
    }
    for (link, afi), link_votes in votes.items():
        winner = majority_relationship(
            (vote.relationship for vote in link_votes),
            min_votes=1,
            min_agreement=0.75,
        )
        if winner is not None:
            annotations[afi].set_canonical(link, winner)
    return annotations


# ----------------------------------------------------------------------
# LocPrf inference (seed shape: two passes, TE filter evaluated twice)
# ----------------------------------------------------------------------
def _reference_locpref_annotations(
    observations: List[ObservedRoute], registry: IRRRegistry
) -> Dict[AFI, ToRAnnotation]:
    def has_traffic_engineering(route: ObservedRoute) -> bool:
        return any(registry.is_traffic_engineering(c) for c in route.communities)

    def first_hop_relationship(route: ObservedRoute) -> Optional[Relationship]:
        if len(route.path) < 2:
            return None
        votes: List[Relationship] = []
        for community in route.communities_of(route.vantage):
            relationship = registry.relationship_for(community)
            if relationship is not None and relationship.is_known:
                votes.append(relationship)
        return majority_relationship(votes, min_votes=1, min_agreement=1.0)

    by_vantage: Dict[int, List[ObservedRoute]] = {}
    for route in observations:
        by_vantage.setdefault(route.vantage, []).append(route)

    mappings: Dict[int, LocPrefMapping] = {}
    for vantage, routes in by_vantage.items():
        mapping = LocPrefMapping(vantage=vantage)
        value_votes: Dict[int, Dict[Relationship, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for route in routes:
            if route.local_pref is None:
                continue
            if has_traffic_engineering(route):
                continue
            relationship = first_hop_relationship(route)
            if relationship is None:
                continue
            value_votes[route.local_pref][relationship] += 1
            mapping.samples += 1
        for value, votes in value_votes.items():
            if len(votes) == 1:
                mapping.mapping[value] = next(iter(votes))
            else:
                mapping.ambiguous_values.add(value)
        mappings[vantage] = mapping

    annotations = {
        AFI.IPV4: ToRAnnotation(AFI.IPV4, source=RelationshipSource.LOCPREF),
        AFI.IPV6: ToRAnnotation(AFI.IPV6, source=RelationshipSource.LOCPREF),
    }
    votes: Dict[Tuple[Link, AFI], List[Relationship]] = defaultdict(list)
    for route in observations:
        if route.local_pref is None:
            continue
        if len(route.path) < 2:
            continue
        if has_traffic_engineering(route):
            continue
        mapping = mappings.get(route.vantage)
        if mapping is None:
            continue
        relationship = mapping.relationship_for(route.local_pref)
        if relationship is None:
            continue
        first_hop = route.path[1]
        link = Link(route.vantage, first_hop)
        canonical = relationship if link.a == route.vantage else relationship.inverse
        votes[(link, route.afi)].append(canonical)
    for (link, afi), link_votes in votes.items():
        winner = majority_relationship(link_votes, min_votes=1, min_agreement=0.75)
        if winner is not None:
            annotations[afi].set_canonical(link, winner)
    return annotations


# ----------------------------------------------------------------------
# Section-3 statistics (seed shape: one re-scan per stage)
# ----------------------------------------------------------------------
def reference_compute_section3(
    observations: List[ObservedRoute], registry: IRRRegistry
) -> Section3Report:
    """Seed Section-3 computation; identical numbers to the live path."""
    by_afi: Dict[AFI, List[ObservedRoute]] = {AFI.IPV4: [], AFI.IPV6: []}
    for observation in observations:
        by_afi[observation.afi].append(observation)

    inventory = LinkInventory()
    for observation in observations:
        target = (
            inventory.ipv4_links
            if observation.afi is AFI.IPV4
            else inventory.ipv6_links
        )
        target.update(observation.links())

    communities = _reference_communities_annotations(observations, registry)
    locpref = _reference_locpref_annotations(observations, registry)
    annotations: Dict[AFI, ToRAnnotation] = {}
    for afi in (AFI.IPV4, AFI.IPV6):
        merged = ToRAnnotation(afi, source=RelationshipSource.COMBINED)
        merged.update(communities[afi])
        merged.update(locpref[afi], overwrite=False)
        annotations[afi] = merged

    report = Section3Report()
    report.ipv6_paths = len({o.path for o in by_afi[AFI.IPV6]})
    report.ipv6_links = len(inventory.ipv6_links)
    report.ipv4_links = len(inventory.ipv4_links)
    report.dual_stack_links = len(inventory.dual_stack_links)

    ipv6_annotation = annotations[AFI.IPV6]
    annotated_ipv6 = {
        link
        for link in inventory.ipv6_links
        if ipv6_annotation.get_canonical(link).is_known
    }
    report.ipv6_links_with_relationship = len(annotated_ipv6)
    report.ipv6_coverage = (
        len(annotated_ipv6) / report.ipv6_links if report.ipv6_links else 0.0
    )
    dual_links = list(inventory.dual_stack_links)
    dual_covered = sum(
        1
        for link in dual_links
        if annotations[AFI.IPV4].get_canonical(link).is_known
        and annotations[AFI.IPV6].get_canonical(link).is_known
    )
    report.dual_stack_links_with_relationship = dual_covered
    report.dual_stack_coverage = dual_covered / len(dual_links) if dual_links else 0.0

    detector = HybridDetector(annotations[AFI.IPV4], ipv6_annotation)
    hybrid_report = detector.detect(inventory.dual_stack_links)
    report.hybrid_links = len(hybrid_report.hybrid_links)
    report.hybrid_fraction = hybrid_report.hybrid_fraction
    report.hybrid_share_peer4_transit6 = hybrid_report.type_share(
        HybridType.PEER4_TRANSIT6
    )
    report.hybrid_share_peer6_transit4 = hybrid_report.type_share(
        HybridType.PEER6_TRANSIT4
    )
    report.hybrid_share_transit_reversed = hybrid_report.type_share(
        HybridType.TRANSIT_REVERSED
    )

    visibility = build_visibility_index(by_afi[AFI.IPV6], afi=AFI.IPV6)
    hybrid_links = hybrid_report.hybrid_link_set()
    report.paths_crossing_hybrid = visibility.paths_crossing_any(hybrid_links)
    report.fraction_paths_crossing_hybrid = visibility.fraction_crossing_any(
        hybrid_links
    )

    analyzer = ValleyAnalyzer(ipv6_annotation)
    seen_paths: Set[Tuple[int, ...]] = set()
    valley_paths = 0
    valley_free = 0
    unknown = 0
    reachability = 0
    total = 0
    for observation in by_afi[AFI.IPV6]:
        path = observation.path
        if path in seen_paths:
            continue
        seen_paths.add(path)
        total += 1
        validation = validate_path(path, ipv6_annotation)
        if validation.validity is PathValidity.VALLEY_FREE:
            valley_free += 1
        elif validation.validity is PathValidity.UNKNOWN:
            unknown += 1
        else:
            valley_paths += 1
            classified = analyzer.classify_valley(validation)
            if classified.reason is ValleyReason.REACHABILITY:
                reachability += 1
    report.valley_paths = valley_paths
    report.valley_fraction = valley_paths / total if total else 0.0
    report.reachability_valley_paths = reachability
    report.reachability_valley_fraction = (
        reachability / valley_paths if valley_paths else 0.0
    )
    return report


def reference_pipeline(
    archive: CollectorArchive, registry: IRRRegistry
) -> Section3Report:
    """The full seed pipeline: archive records -> Section-3 report."""
    extraction = reference_extract_observations(archive.records(), deduplicate=True)
    return reference_compute_section3(extraction.observations, registry)
