"""Rendering analysis results for humans and machines.

Every report object in the library exposes ``summary()`` / ``rows()`` /
``as_dict()`` methods with plain Python values; this module turns them
into aligned text tables (for the examples and the benchmark harness
output) and JSON documents (for EXPERIMENTS.md bookkeeping).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def format_table(
    rows: Sequence[Tuple[str, str]],
    title: str = "",
    label_header: str = "metric",
    value_header: str = "value",
) -> str:
    """Render (label, value) rows as an aligned two-column text table."""
    label_width = max(
        [len(label_header)] + [len(label) for label, _ in rows]
    ) if rows else len(label_header)
    value_width = max(
        [len(value_header)] + [len(value) for _, value in rows]
    ) if rows else len(value_header)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), label_width + value_width + 3))
    lines.append(f"{label_header.ljust(label_width)} | {value_header}")
    lines.append(f"{'-' * label_width}-+-{'-' * value_width}")
    for label, value in rows:
        lines.append(f"{label.ljust(label_width)} | {value}")
    return "\n".join(lines)


def format_summary(
    summary: Mapping[str, Number],
    title: str = "",
    percentage_keys: Iterable[str] = (),
) -> str:
    """Render a flat numeric summary dictionary as a text table.

    Keys listed in ``percentage_keys`` (or ending in ``_fraction`` /
    ``_coverage`` / ``_share`` / ``_reduction``) are displayed as
    percentages.
    """
    percentage = set(percentage_keys)
    rows: List[Tuple[str, str]] = []
    for key, value in summary.items():
        as_percentage = (
            key in percentage
            or key.endswith(("_fraction", "_coverage", "_share", "_reduction", "_rate"))
            or key.startswith(("share_", "fraction_"))
        )
        if as_percentage:
            rows.append((key, f"{float(value):.1%}"))
        elif isinstance(value, float) and not value.is_integer():
            rows.append((key, f"{value:.3f}"))
        else:
            rows.append((key, f"{int(value)}"))
    return format_table(rows, title=title)


def format_series(
    x_label: str,
    series: Mapping[str, Sequence[Number]],
    title: str = "",
) -> str:
    """Render aligned columns for one or more series sharing an x axis.

    Used by the Figure-2 benchmark/example to print the correction sweep
    the way the paper plots it (one row per number of corrected links).
    """
    lengths = {len(values) for values in series.values()}
    if len(lengths) > 1:
        raise ValueError("all series must have the same length")
    length = lengths.pop() if lengths else 0
    headers = [x_label] + list(series)
    widths = [max(len(h), 12) for h in headers]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 3 * (len(widths) - 1)))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for index in range(length):
        cells = [str(index).ljust(widths[0])]
        for (name, values), width in zip(series.items(), widths[1:]):
            value = values[index]
            if isinstance(value, float):
                cells.append(f"{value:.3f}".ljust(width))
            else:
                cells.append(str(value).ljust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def to_json(data: Mapping, indent: int = 2) -> str:
    """Serialize a (possibly nested) report mapping to JSON text."""
    return json.dumps(data, indent=indent, sort_keys=True, default=_json_default)


def write_json_report(
    payload: Mapping, path, schema_version: Optional[int] = None
) -> None:
    """Write a JSON report with the repository's one stable
    serialization: sorted keys, a ``schema_version`` field, a trailing
    newline.  Every ``--json`` writer (``section3``, ``figure2``,
    ``repro sweep``) goes through here so the format cannot drift
    between reports.

    ``schema_version`` is injected when the payload does not already
    carry one (sweep reports embed their own).
    """
    if schema_version is not None and "schema_version" not in payload:
        payload = {"schema_version": schema_version, **payload}
    Path(path).write_text(to_json(payload) + "\n", encoding="utf-8")


def _json_default(value):
    """Fallback serializer: enums and sets become strings / lists."""
    if hasattr(value, "value"):
        return str(value)
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    return str(value)
