"""Valley-free reachability analysis of an annotated topology.

The paper notes that "the IPv6 topology is partitioned in terms of
valley-free routing": if every AS applied the strict Gao–Rexford export
rules, some AS pairs simply could not reach each other over IPv6, and
operators bridge those gaps by relaxing the rule (the reachability-
motivated valley paths).

This module quantifies that partitioning for any
:class:`~repro.core.annotation.ToRAnnotation`:

* the fraction of ordered AS pairs with a valley-free path,
* the ASes with full / partial valley-free reachability, and
* the mutual-reachability islands (connected components of the "both
  directions valley-free reachable" relation), whose count is a direct
  measure of how partitioned the plane is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.core.annotation import ToRAnnotation, valley_free_distances
from repro.core.relationships import AFI


@dataclass
class ReachabilityPartitionReport:
    """Valley-free reachability statistics for one annotation.

    Attributes:
        ases: Number of ASes considered.
        ordered_pairs: Number of ordered (source, destination) pairs.
        reachable_pairs: Pairs with a valley-free path.
        fully_reachable_ases: ASes that can reach every other AS
            valley-free.
        island_sizes: Sizes of the mutual-reachability islands, largest
            first.
        unreachable_examples: A few (source, destination) pairs with no
            valley-free path, for reporting.
    """

    ases: int = 0
    ordered_pairs: int = 0
    reachable_pairs: int = 0
    fully_reachable_ases: int = 0
    island_sizes: List[int] = field(default_factory=list)
    unreachable_examples: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def reachable_fraction(self) -> float:
        """Fraction of ordered pairs with a valley-free path."""
        if self.ordered_pairs == 0:
            return 0.0
        return self.reachable_pairs / self.ordered_pairs

    @property
    def island_count(self) -> int:
        """Number of mutual-reachability islands."""
        return len(self.island_sizes)

    @property
    def is_partitioned(self) -> bool:
        """True when not every pair is valley-free reachable."""
        return self.reachable_pairs < self.ordered_pairs

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary for reports and benchmarks."""
        return {
            "ases": float(self.ases),
            "ordered_pairs": float(self.ordered_pairs),
            "reachable_pairs": float(self.reachable_pairs),
            "reachable_fraction": self.reachable_fraction,
            "fully_reachable_ases": float(self.fully_reachable_ases),
            "island_count": float(self.island_count),
            "largest_island": float(self.island_sizes[0]) if self.island_sizes else 0.0,
        }


def analyze_reachability(
    annotation: ToRAnnotation,
    ases: Optional[Iterable[int]] = None,
    max_examples: int = 10,
) -> ReachabilityPartitionReport:
    """Measure the valley-free reachability of an annotated plane.

    ``ases`` restricts the analysis (default: every AS appearing in the
    annotation).  The analysis runs one valley-free BFS per AS, so its
    cost is O(|ases| x |links|).
    """
    members = sorted(set(ases)) if ases is not None else annotation.ases
    member_set = set(members)
    report = ReachabilityPartitionReport(ases=len(members))
    if len(members) < 2:
        report.island_sizes = [len(members)] if members else []
        return report
    report.ordered_pairs = len(members) * (len(members) - 1)

    reachable_sets: Dict[int, Set[int]] = {}
    for source in members:
        reachable = set(valley_free_distances(annotation, source)) & member_set
        reachable.discard(source)
        reachable_sets[source] = reachable
        report.reachable_pairs += len(reachable)
        if len(reachable) == len(members) - 1:
            report.fully_reachable_ases += 1
        elif len(report.unreachable_examples) < max_examples:
            for destination in members:
                if destination != source and destination not in reachable:
                    report.unreachable_examples.append((source, destination))
                    break

    # Mutual-reachability islands: connected components of the symmetric
    # "reachable in both directions" relation.
    mutual = nx.Graph()
    mutual.add_nodes_from(members)
    for source in members:
        for destination in reachable_sets[source]:
            if source < destination and source in reachable_sets.get(destination, ()):
                mutual.add_edge(source, destination)
    report.island_sizes = sorted(
        (len(component) for component in nx.connected_components(mutual)), reverse=True
    )
    return report


def compare_relaxation(
    strict: ToRAnnotation,
    relaxed_paths_reachable_pairs: int,
    ases: Optional[Iterable[int]] = None,
) -> Dict[str, float]:
    """Compare strict valley-free reachability against an observed pair count.

    Helper for ablation A2: given the pair count actually achieved when
    relaxations are allowed (measured from the propagation results), how
    much reachability would be lost under strict valley-free routing?
    """
    strict_report = analyze_reachability(strict, ases)
    gained = relaxed_paths_reachable_pairs - strict_report.reachable_pairs
    return {
        "strict_reachable_pairs": float(strict_report.reachable_pairs),
        "relaxed_reachable_pairs": float(relaxed_paths_reachable_pairs),
        "pairs_gained_by_relaxation": float(max(gained, 0)),
        "strict_fraction": strict_report.reachable_fraction,
    }
