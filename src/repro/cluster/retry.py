"""Retry with exponential backoff for flaky cache backends.

A distributed sweep multiplies every storage operation by workers ×
stages × scenarios; at that volume "the filesystem hiccuped once" stops
being rare and starts being every run.  The policy here is the single
place the stack decides *which* faults are worth retrying and *how*:

* **Classification.**  :class:`~repro.cluster.backends.BackendError`
  and its :class:`~repro.cluster.backends.TransientBackendError`
  subclass are retryable — an unknown storage fault defaults to
  retryable on purpose (a wasted retry costs milliseconds, a spuriously
  failed sweep wave costs a whole scenario runtime).
  :class:`~repro.cluster.backends.PersistentBackendError` (permission
  denied, disk full, corrupt store) is re-raised immediately: retrying
  it would only turn a crisp error into a slow one.  Anything that is
  not a backend fault at all (a bug, a ``KeyboardInterrupt``) always
  propagates untouched.
* **Backoff.**  Exponential with full jitter: attempt *n* sleeps a
  uniform random fraction of ``base_delay * multiplier**n`` capped at
  ``max_delay``.  Jitter is drawn from a policy-owned seeded RNG so
  chaos tests replay identical schedules; the default seed keeps
  production runs deterministic per policy instance too (determinism is
  this repository's house rule — results must not depend on timing).

:class:`RetryingBackend` applies the policy to every operation of a
wrapped :class:`~repro.cluster.backends.CacheBackend`.
:class:`~repro.pipeline.ArtifactCache` wraps its backend in one by
default, so *every* cache consumer — pipeline runs, sweeps, workers,
hygiene commands — tolerates transient storage faults without any of
them knowing retries exist.  The operations are safe to retry by
construction: ``get``/``stat``/``list``/``scan``/``touch`` are
read-only or idempotent, ``put`` atomically overwrites with identical
bytes, ``delete`` tolerates already-deleted, and a ``put_if_absent``
whose first attempt secretly succeeded simply loses the race to itself
(the caller already treats losing as success — payloads under one key
are bit-identical by construction).
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.cluster.backends import (
    BackendError,
    CacheBackend,
    ObjectStat,
    PersistentBackendError,
)
from repro.telemetry import get_tracer

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient backend fault, and how long
    to back off between attempts.

    ``max_attempts`` counts *total* tries (1 = no retries).  Sleeps
    follow full-jitter exponential backoff: ``uniform(0, base_delay *
    multiplier**retry)`` capped at ``max_delay``.  ``seed`` fixes the
    jitter sequence (per :class:`RetryingBackend` instance).
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    multiplier: float = 4.0
    max_delay: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")

    def is_retryable(self, exc: BaseException) -> bool:
        """Transient-vs-persistent classification (see module docs)."""
        if isinstance(exc, PersistentBackendError):
            return False
        return isinstance(exc, BackendError)

    def backoff_ceiling(self, retry_index: int) -> float:
        """The jitter window's upper bound before the ``retry_index``-th
        retry (0-based)."""
        return min(self.base_delay * (self.multiplier ** retry_index), self.max_delay)


#: The policy ArtifactCache applies when the caller does not choose one.
DEFAULT_RETRY_POLICY = RetryPolicy()


class RetryExhausted(BackendError):
    """Every attempt of one backend operation failed with a transient
    fault.  Carries the per-attempt errors so a dead-letter record (or
    a human) sees the whole story, with the last failure as
    ``__cause__``."""

    def __init__(self, operation: str, attempts: List[BaseException]) -> None:
        history = "; ".join(
            f"attempt {i + 1}: {type(exc).__name__}: {exc}"
            for i, exc in enumerate(attempts)
        )
        super().__init__(
            f"backend operation {operation!r} failed "
            f"{len(attempts)} time(s) [{history}]"
        )
        self.operation = operation
        self.attempts = attempts


class RetryingBackend(CacheBackend):
    """A :class:`CacheBackend` decorator retrying transient faults.

    Wraps every operation in the policy's retry loop; everything else
    (atomicity, key validation, semantics) is the inner backend's.
    ``lock`` is deliberately *not* retried: re-entering a mutex acquire
    that may or may not have succeeded is ambiguous, and lock faults
    are already tolerated as advisory by their only caller.
    """

    def __init__(
        self,
        inner: CacheBackend,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self._sleep = sleep
        self._rng = random.Random(policy.seed)
        self.retries = 0  # transparent faults, made countable for tests

    @property
    def location(self) -> str:
        return self.inner.location

    def _call(self, operation: str, fn: Callable[[], T]) -> T:
        failures: List[BaseException] = []
        while True:
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not self.policy.is_retryable(exc):
                    raise
                failures.append(exc)
                if len(failures) >= self.policy.max_attempts:
                    raise RetryExhausted(operation, failures) from exc
                self.retries += 1
                tracer = get_tracer()
                if tracer:
                    tracer.counter("backend.retry", operation=operation,
                                   error=type(exc).__name__)
                ceiling = self.policy.backoff_ceiling(len(failures) - 1)
                if ceiling > 0:
                    self._sleep(self._rng.uniform(0.0, ceiling))

    def get(self, key: str) -> Optional[bytes]:
        return self._call("get", lambda: self.inner.get(key))

    def put(self, key: str, data: bytes) -> None:
        self._call("put", lambda: self.inner.put(key, data))

    def put_if_absent(self, key: str, data: bytes) -> bool:
        return self._call("put_if_absent", lambda: self.inner.put_if_absent(key, data))

    def delete(self, key: str) -> bool:
        return self._call("delete", lambda: self.inner.delete(key))

    def stat(self, key: str) -> Optional[ObjectStat]:
        return self._call("stat", lambda: self.inner.stat(key))

    def list(self, prefix: str = "") -> List[str]:
        return self._call("list", lambda: self.inner.list(prefix))

    def scan(self, prefix: str = "") -> List[Tuple[str, ObjectStat]]:
        return self._call("scan", lambda: self.inner.scan(prefix))

    def touch(self, key: str) -> None:
        self._call("touch", lambda: self.inner.touch(key))

    def collect_orphans(
        self, max_age_seconds: Optional[float] = None, dry_run: bool = False
    ) -> int:
        return self.inner.collect_orphans(max_age_seconds, dry_run)

    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        return self.inner.lock(timeout)


def with_retries(
    backend: CacheBackend, policy: Optional[RetryPolicy] = None
) -> CacheBackend:
    """Wrap ``backend`` in a :class:`RetryingBackend` (idempotent: an
    already-retrying backend passes through so stacked constructors
    cannot nest retry loops and multiply attempt counts)."""
    if isinstance(backend, RetryingBackend):
        return backend
    return RetryingBackend(backend, policy or DEFAULT_RETRY_POLICY)
