"""Pluggable artifact-cache backends: byte-addressed object stores.

The artifact cache (:mod:`repro.pipeline.artifacts`) used to *be* a
directory layout; distributing a sweep across workers makes the byte
storage a contract of its own.  A :class:`CacheBackend` is a flat
key/value object store — keys are POSIX-ish relative names like
``"store/<fingerprint>.pkl"`` — with exactly the operations the cache
needs and nothing it does not:

* ``get`` / ``put`` / ``delete`` / ``stat`` / ``list`` — plain object
  access; ``put`` must be **atomic** (no reader ever observes a
  half-written object),
* ``put_if_absent`` — the distributed dedupe primitive: when two
  workers race to publish the same fingerprint (a re-claimed task whose
  original owner turned out to be alive, a failure-broken wave), exactly
  one write wins **atomically** and the loser learns it lost — the
  payloads are bit-identical by construction, so losing is free,
* ``touch`` — an advisory last-use bump feeding LRU eviction,
* ``lock`` — a cross-process mutex scoped to the store, serializing
  read-modify-write of shared metadata (the ``cache-index.json``
  sidecar) between concurrent workers and prunes.

Two production backends ship: :class:`LocalDirectoryBackend` (the
pre-existing on-disk layout, refactored behind the interface — one
payload file plus metadata sidecar per artifact under a shared
directory, e.g. on NFS) and :class:`SQLiteObjectStoreBackend` (a
single-file key-value store standing in for the "object store" shape —
all objects in one SQLite database, put-if-absent via ``INSERT OR
IGNORE``).  :class:`MemoryBackend` backs the conformance tests.  All
three must pass the same conformance suite
(``tests/test_cache_backends.py``).

Storage faults raise :class:`BackendError` (an ``OSError`` subclass) so
callers keep one except-clause regardless of the backend underneath.
"""

from __future__ import annotations

import abc
import contextlib
import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Tuple, Union

try:  # POSIX cross-process locking; degrade to in-process elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]


class BackendError(OSError):
    """A storage fault inside a cache backend (I/O error, locked or
    corrupt database, ...).  Subclasses ``OSError`` on purpose: every
    caller that already tolerates a flaky filesystem tolerates a flaky
    backend with the same except-clause."""


class TransientBackendError(BackendError):
    """A storage fault that may succeed on retry (a momentary I/O
    hiccup, a briefly locked database, an NFS blip).  The
    :class:`~repro.cluster.retry.RetryPolicy` retries these; raising
    the plain :class:`BackendError` base is treated the same way
    (unknown faults default to retryable — a wasted retry is cheap, a
    spuriously failed sweep wave is not)."""


class PersistentBackendError(BackendError):
    """A storage fault no retry can fix (permission denied, disk full,
    corrupt store).  Retry policies re-raise these immediately."""


class ObjectStat(NamedTuple):
    """Size and advisory last-use time of one stored object."""

    size: int
    mtime: float


def validate_key(key: str) -> str:
    """Reject keys that could escape or corrupt a store.

    Keys are relative POSIX-ish names: non-empty ``/``-separated
    segments, no ``..``, no absolute paths, no backslashes (a Windows
    separator smuggled into a key would mean two spellings of one
    object).
    """
    if not isinstance(key, str) or not key:
        raise ValueError(f"backend key must be a non-empty string, got {key!r}")
    if key.startswith("/") or "\\" in key:
        raise ValueError(f"backend key must be a relative POSIX name, got {key!r}")
    segments = key.split("/")
    if any(not segment or segment == ".." for segment in segments):
        raise ValueError(f"backend key has empty or '..' segments: {key!r}")
    if any(segment.startswith(".") for segment in segments):
        # '.' segments would alias two spellings of one key on the
        # directory backend, and dot-prefixed names are its namespace
        # for invisible internals (temp files, the lock file) — a
        # dot-prefixed key would be storable but unlistable there while
        # behaving normally on other backends.
        raise ValueError(f"backend key has dot-prefixed segments: {key!r}")
    return key


class _FileLock:
    """A cross-process mutex backed by ``flock`` on a lock file.

    Reentrancy is *not* provided — callers hold the lock across one
    read-modify-write and release it.  Where ``fcntl`` is unavailable
    the lock degrades to an in-process ``threading.Lock`` (documented
    limitation: no cross-process exclusion on such platforms).

    With a ``timeout``, a lock that stays busy raises
    :class:`TransientBackendError` instead of blocking forever — the
    escape hatch for *advisory* critical sections (index bookkeeping)
    that must not inherit the fate of whoever is wedged inside the
    lock (e.g. a watchdog-abandoned thread stalled mid-IO).
    """

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._thread_lock = threading.Lock()

    def _flock(self, handle: int, timeout: Optional[float]) -> None:
        if timeout is None:
            fcntl.flock(handle, fcntl.LOCK_EX)
            return
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise TransientBackendError(
                        f"lock {self._path} still held after {timeout:g}s"
                    )
                time.sleep(0.01)

    @contextlib.contextmanager
    def acquire(self, timeout: Optional[float] = None) -> Iterator[None]:
        if not self._thread_lock.acquire(
            timeout=-1 if timeout is None else timeout
        ):
            raise TransientBackendError(
                f"lock {self._path} still held in-process after {timeout:g}s"
            )
        try:
            if fcntl is None:  # pragma: no cover - non-POSIX platform
                yield
                return
            try:
                self._path.parent.mkdir(parents=True, exist_ok=True)
                handle = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
            except OSError as exc:
                raise BackendError(f"cannot open lock file {self._path}: {exc}") from exc
            try:
                self._flock(handle, timeout)
                try:
                    yield
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                os.close(handle)
        finally:
            self._thread_lock.release()


class CacheBackend(abc.ABC):
    """The byte-storage contract behind :class:`ArtifactCache`.

    Implementations must make ``put`` atomic (readers see the old bytes
    or the new bytes, never a prefix) and ``put_if_absent`` an atomic
    test-and-set.  ``touch`` and ``list``/``stat`` freshness are
    advisory: losing a touch degrades LRU ordering, never correctness.
    """

    @property
    @abc.abstractmethod
    def location(self) -> str:
        """Where this store lives (a path or URL; for humans/reports)."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[bytes]:
        """The object's bytes, or ``None`` when absent."""

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store (or atomically overwrite) one object."""

    @abc.abstractmethod
    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Store the object only if the key is free; ``True`` iff stored."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove one object; ``True`` iff it existed."""

    @abc.abstractmethod
    def stat(self, key: str) -> Optional[ObjectStat]:
        """Size + last-use time from the store itself (never from a
        sidecar index — stale indexes must not misreport sizes)."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """Every stored key starting with ``prefix``, sorted."""

    def scan(self, prefix: str = "") -> List[Tuple[str, ObjectStat]]:
        """Every stored key with its stat, sorted by key.

        The default composes ``list`` + per-key ``stat``; backends with
        a cheaper bulk path (one query instead of N) override it —
        hygiene scans (`stats`/`prune`) call this once per run/wave.
        Keys that vanish between list and stat are skipped.
        """
        results: List[Tuple[str, ObjectStat]] = []
        for key in self.list(prefix):
            stat = self.stat(key)
            if stat is not None:
                results.append((key, stat))
        return results

    @abc.abstractmethod
    def touch(self, key: str) -> None:
        """Advisory last-use bump; must be cheap (O(1) per object).

        May debounce: skipping the bump while the recorded last use is
        already recent is allowed — LRU eviction does not care about
        sub-minute precision, and it keeps hot cache hits read-only.
        """

    @abc.abstractmethod
    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        """A mutex over the whole store for shared-metadata RMW;
        cross-process wherever the platform allows.

        ``timeout`` bounds the wait: past it, acquisition raises
        :class:`TransientBackendError` instead of blocking — callers
        whose critical section is advisory (index bookkeeping) pass one
        so a wedged lock holder cannot stall them.  ``None`` blocks.
        """

    def collect_orphans(
        self, max_age_seconds: Optional[float] = None, dry_run: bool = False
    ) -> int:
        """Remove (or with ``dry_run`` just count) debris left by
        crashed writers — e.g. a temp file orphaned by a worker killed
        mid ``put_if_absent``.  Returns how many orphans were found.
        Backends whose writes cannot leave debris return 0."""
        return 0

    def exists(self, key: str) -> bool:
        return self.stat(key) is not None


# ----------------------------------------------------------------------
# local directory backend (the original on-disk layout)
# ----------------------------------------------------------------------
class LocalDirectoryBackend(CacheBackend):
    """Objects as files under a root directory (key = relative path).

    This is the layout :class:`ArtifactCache` has always written —
    refactored behind the interface, not changed: existing cache
    directories keep working, and ``payload_path``-style tooling keeps
    pointing at real files.  Atomicity comes from temp-file + ``rename``
    (overwrite) and temp-file + ``link`` (put-if-absent: ``link`` fails
    with ``EEXIST`` exactly when another writer won).  Dot-prefixed
    files (in-flight temp files, the lock file) are invisible to
    ``list``.
    """

    LOCK_FILENAME = ".cache.lock"

    #: Temp files this old are orphans of a crashed writer (a healthy
    #: put holds its temp file for milliseconds) and are collected by
    #: the next hygiene scan, so budgeted caches cannot leak invisible
    #: disk through worker churn.
    TEMP_GC_AGE_SECONDS = 3600.0

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise BackendError(f"cannot create cache root {self.root}: {exc}") from exc
        self._lock = _FileLock(self.root / self.LOCK_FILENAME)

    @property
    def location(self) -> str:
        return str(self.root)

    def _path(self, key: str) -> Path:
        return self.root / validate_key(key)

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None
        except IsADirectoryError:
            return None
        except OSError as exc:
            raise BackendError(f"cannot read {key!r}: {exc}") from exc

    def _write_temp(self, path: Path, data: bytes) -> str:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)
            raise
        return temp_name

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        try:
            temp_name = self._write_temp(path, data)
            os.replace(temp_name, path)
        except OSError as exc:
            raise BackendError(f"cannot write {key!r}: {exc}") from exc

    def put_if_absent(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        try:
            temp_name = self._write_temp(path, data)
        except OSError as exc:
            raise BackendError(f"cannot write {key!r}: {exc}") from exc
        try:
            try:
                os.link(temp_name, path)  # atomic: fails iff the key exists
                return True
            except FileExistsError:
                return False
            except OSError:
                # Filesystems without hardlinks (exFAT, some mounts):
                # reserve the key with an exclusive create — the same
                # single-winner semantics — then move the payload over
                # the reservation.  A reader glimpsing the empty
                # reservation sees a hash mismatch, i.e. a miss, never
                # torn data.
                try:
                    os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                except FileExistsError:
                    return False
                except OSError as exc:
                    raise BackendError(f"cannot publish {key!r}: {exc}") from exc
                try:
                    os.replace(temp_name, path)
                except OSError as exc:
                    raise BackendError(f"cannot publish {key!r}: {exc}") from exc
                return True
        finally:
            with contextlib.suppress(OSError):
                os.unlink(temp_name)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise BackendError(f"cannot delete {key!r}: {exc}") from exc
        # Keep the tree tidy: drop directories the deletion emptied
        # (rmdir refuses non-empty ones, which is exactly the check).
        parent = path.parent
        while parent != self.root:
            try:
                parent.rmdir()
            except OSError:
                break
            parent = parent.parent
        return True

    def stat(self, key: str) -> Optional[ObjectStat]:
        try:
            result = self._path(key).stat()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise BackendError(f"cannot stat {key!r}: {exc}") from exc
        if not os.path.isfile(self._path(key)):
            return None
        return ObjectStat(size=result.st_size, mtime=result.st_mtime)

    def list(self, prefix: str = "") -> List[str]:
        keys: List[str] = []
        try:
            for directory, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    if name.startswith("."):
                        continue  # temp files, the lock file
                    relative = Path(directory, name).relative_to(self.root)
                    key = relative.as_posix()
                    if key.startswith(prefix):
                        keys.append(key)
        except OSError as exc:
            raise BackendError(f"cannot list {self.root}: {exc}") from exc
        return sorted(keys)

    def collect_orphans(
        self, max_age_seconds: Optional[float] = None, dry_run: bool = False
    ) -> int:
        """Unlink temp files left by crashed writers (best effort).

        A writer SIGKILLed between ``mkstemp`` and ``replace``/``link``
        leaves a full-size dot-prefixed temp file that ``list`` hides —
        without collection, budgeted caches would leak invisible disk
        on every worker crash.  Age-gated (default
        :data:`TEMP_GC_AGE_SECONDS`) so in-flight writes are never
        touched; the cache hygiene entry points (``stats``/``prune``)
        call it explicitly — never implicitly from ``scan``, so a
        ``dry_run`` prune truly deletes nothing.  Returns how many
        orphans were found (and, unless ``dry_run``, removed).
        """
        if max_age_seconds is None:
            max_age_seconds = self.TEMP_GC_AGE_SECONDS
        cutoff = time.time() - max_age_seconds
        collected = 0
        try:
            for directory, _dirnames, filenames in os.walk(self.root):
                for name in filenames:
                    if not name.startswith(".") or name == self.LOCK_FILENAME:
                        continue
                    path = Path(directory, name)
                    try:
                        if path.stat().st_mtime < cutoff:
                            if not dry_run:
                                path.unlink()
                            collected += 1
                    except OSError:
                        continue  # vanished or undeletable: not our problem
        except OSError:
            pass
        return collected

    def touch(self, key: str) -> None:
        try:
            os.utime(self._path(key))
        except OSError as exc:
            raise BackendError(f"cannot touch {key!r}: {exc}") from exc

    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        return self._lock.acquire(timeout)


# ----------------------------------------------------------------------
# SQLite object-store backend
# ----------------------------------------------------------------------
class SQLiteObjectStoreBackend(CacheBackend):
    """Every object a row in one SQLite database file.

    The generic key-value/object-store shape: a single file multiple
    worker processes on one host share, with transactional writes.
    ``put_if_absent`` maps to ``INSERT OR IGNORE`` — SQLite's row-level
    atomicity is the test-and-set.  WAL journaling keeps readers and the
    single writer from blocking each other; every operation opens its
    own short-lived connection, so the backend is thread- and
    process-safe without shared connection state.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS objects (
            key        TEXT PRIMARY KEY,
            data       BLOB NOT NULL,
            size       INTEGER NOT NULL,
            created_at REAL NOT NULL,
            last_used  REAL NOT NULL
        )
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise BackendError(f"cannot create {self.path.parent}: {exc}") from exc
        self._lock = _FileLock(self.path.with_name(self.path.name + ".lock"))
        try:
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            conn.isolation_level = None  # VACUUM refuses transactions
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                # FULL auto-vacuum releases pages to the OS on delete;
                # without it a pruned store keeps its peak file size
                # forever and --cache-budget-bytes bounds nothing.  A
                # pre-existing store without the mode needs one VACUUM
                # for the change to take effect (one-time cost).
                if conn.execute("PRAGMA auto_vacuum").fetchone()[0] != 1:
                    conn.execute("PRAGMA auto_vacuum=FULL")
                    conn.execute("VACUUM")
                conn.execute(self._SCHEMA)
            finally:
                conn.close()
        except sqlite3.Error as exc:
            raise BackendError(
                f"cannot open object store {self.path}: {exc}"
            ) from exc

    @property
    def location(self) -> str:
        return str(self.path)

    #: A warm hit re-touched within this window skips the UPDATE, so
    #: repeated cache hits stay read-only instead of serializing every
    #: worker on the store's single-writer lock (LRU eviction does not
    #: care about sub-minute last-used precision).
    TOUCH_DEBOUNCE_SECONDS = 60.0

    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        try:
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            # WAL + NORMAL is durable against application crashes and
            # loses at most the last transactions on a power loss — the
            # right trade for a rebuildable cache, and it spares every
            # write transaction a full fsync.
            conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.Error as exc:
            raise BackendError(f"cannot open object store {self.path}: {exc}") from exc
        try:
            yield conn
            conn.commit()
        except sqlite3.Error as exc:
            conn.rollback()
            raise BackendError(f"object store {self.path}: {exc}") from exc
        finally:
            conn.close()

    def get(self, key: str) -> Optional[bytes]:
        validate_key(key)
        with self._connect() as conn:
            row = conn.execute(
                "SELECT data FROM objects WHERE key = ?", (key,)
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, key: str, data: bytes) -> None:
        validate_key(key)
        now = time.time()
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO objects (key, data, size, created_at, last_used) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET data = excluded.data, "
                "size = excluded.size, created_at = excluded.created_at, "
                "last_used = excluded.last_used",
                (key, sqlite3.Binary(data), len(data), now, now),
            )

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_key(key)
        now = time.time()
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO objects (key, data, size, created_at, last_used) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, sqlite3.Binary(data), len(data), now, now),
            )
            return cursor.rowcount == 1

    def delete(self, key: str) -> bool:
        validate_key(key)
        with self._connect() as conn:
            cursor = conn.execute("DELETE FROM objects WHERE key = ?", (key,))
            return cursor.rowcount == 1

    def stat(self, key: str) -> Optional[ObjectStat]:
        validate_key(key)
        with self._connect() as conn:
            row = conn.execute(
                "SELECT size, last_used FROM objects WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        return ObjectStat(size=int(row[0]), mtime=float(row[1]))

    _PREFIX_QUERY = (
        "WHERE key LIKE ? ESCAPE '\\' ORDER BY key"
    )

    @staticmethod
    def _like_prefix(prefix: str) -> str:
        escaped = (
            prefix.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
        )
        return escaped + "%"

    def list(self, prefix: str = "") -> List[str]:
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT key FROM objects {self._PREFIX_QUERY}",
                (self._like_prefix(prefix),),
            ).fetchall()
        return [row[0] for row in rows]

    def scan(self, prefix: str = "") -> List[Tuple[str, ObjectStat]]:
        # One query for the whole hygiene scan instead of a connection
        # per key (the default list+stat composition).
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT key, size, last_used FROM objects {self._PREFIX_QUERY}",
                (self._like_prefix(prefix),),
            ).fetchall()
        return [
            (key, ObjectStat(size=int(size), mtime=float(last_used)))
            for key, size, last_used in rows
        ]

    def touch(self, key: str) -> None:
        validate_key(key)
        now = time.time()
        with self._connect() as conn:
            row = conn.execute(
                "SELECT last_used FROM objects WHERE key = ?", (key,)
            ).fetchone()
            if row is None or now - float(row[0]) < self.TOUCH_DEBOUNCE_SECONDS:
                return  # fresh enough: stay read-only
            conn.execute(
                "UPDATE objects SET last_used = ? WHERE key = ?", (now, key)
            )

    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        return self._lock.acquire(timeout)


# ----------------------------------------------------------------------
# in-memory backend (tests, conformance reference)
# ----------------------------------------------------------------------
class MemoryBackend(CacheBackend):
    """A dict-backed store: the conformance-suite reference.

    In-process only (its ``lock`` excludes threads, not processes) —
    useful for tests and as the smallest correct implementation of the
    contract, not for sharing between workers.
    """

    def __init__(self) -> None:
        self._objects: dict = {}  # key -> (bytes, last_used)
        self._mutex = threading.Lock()
        self._shared = threading.Lock()

    @property
    def location(self) -> str:
        return "memory://"

    def get(self, key: str) -> Optional[bytes]:
        validate_key(key)
        with self._mutex:
            entry = self._objects.get(key)
            return entry[0] if entry is not None else None

    def put(self, key: str, data: bytes) -> None:
        validate_key(key)
        with self._mutex:
            self._objects[key] = (bytes(data), time.time())

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_key(key)
        with self._mutex:
            if key in self._objects:
                return False
            self._objects[key] = (bytes(data), time.time())
            return True

    def delete(self, key: str) -> bool:
        validate_key(key)
        with self._mutex:
            return self._objects.pop(key, None) is not None

    def stat(self, key: str) -> Optional[ObjectStat]:
        validate_key(key)
        with self._mutex:
            entry = self._objects.get(key)
        if entry is None:
            return None
        return ObjectStat(size=len(entry[0]), mtime=entry[1])

    def list(self, prefix: str = "") -> List[str]:
        with self._mutex:
            return sorted(key for key in self._objects if key.startswith(prefix))

    def touch(self, key: str) -> None:
        validate_key(key)
        with self._mutex:
            entry = self._objects.get(key)
            if entry is not None:
                self._objects[key] = (entry[0], time.time())

    @contextlib.contextmanager
    def _locked(self, timeout: Optional[float] = None) -> Iterator[None]:
        if not self._shared.acquire(timeout=-1 if timeout is None else timeout):
            raise TransientBackendError(
                f"memory backend lock still held after {timeout:g}s"
            )
        try:
            yield
        finally:
            self._shared.release()

    def lock(self, timeout: Optional[float] = None) -> contextlib.AbstractContextManager:
        return self._locked(timeout)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
SQLITE_SPEC_PREFIX = "sqlite://"

#: ``fault://PLAN.json!INNER_SPEC`` wraps the inner backend in a
#: deterministic fault injector (see :mod:`repro.faults`) — the spec
#: form exists so chaos runs can thread injection through everything
#: that already passes cache specs around (queue rows, spawned workers).
FAULT_SPEC_PREFIX = "fault://"
FAULT_SPEC_SEPARATOR = "!"


def _split_fault_spec(text: str) -> Tuple[str, str]:
    body = text[len(FAULT_SPEC_PREFIX):]
    plan_path, separator, inner = body.partition(FAULT_SPEC_SEPARATOR)
    if not separator or not plan_path or not inner:
        raise ValueError(
            f"malformed fault spec {text!r}: expected "
            f"'{FAULT_SPEC_PREFIX}PLAN.json{FAULT_SPEC_SEPARATOR}INNER_SPEC'"
        )
    return plan_path, inner


def spec_path(spec: Union[str, Path]) -> Path:
    """The filesystem path a cache spec points at (directory root or
    object-store file) — the single place the spec grammar is parsed,
    shared by :func:`open_backend` and existence checks in the CLI.
    A ``fault://`` spec resolves to its *inner* store's path."""
    text = str(spec)
    if text.startswith(FAULT_SPEC_PREFIX):
        return spec_path(_split_fault_spec(text)[1])
    if text.startswith(SQLITE_SPEC_PREFIX):
        return Path(text[len(SQLITE_SPEC_PREFIX):])
    return Path(text)


def open_backend(spec: Union[str, Path, CacheBackend]) -> CacheBackend:
    """Open a backend from a cache spec.

    * an existing :class:`CacheBackend` passes through,
    * ``fault://PLAN.json!INNER`` wraps the backend ``INNER`` opens in a
      :class:`~repro.faults.FaultInjectingBackend` driven by the JSON
      fault plan (chaos testing; see :mod:`repro.faults`),
    * ``sqlite://PATH`` (or a path ending in ``.sqlite``, or an existing
      regular file) opens the SQLite object store,
    * anything else is a cache *directory* (created on demand) — the
      layout every pre-existing ``--cache-dir`` points at.

    The file-vs-directory sniff is what lets ``repro cache stats|prune``
    operate on a cache regardless of which backend wrote it.
    """
    if isinstance(spec, CacheBackend):
        return spec
    text = str(spec)
    if text.startswith(FAULT_SPEC_PREFIX):
        # Imported lazily: repro.faults imports this module.
        from repro.faults import FaultInjectingBackend, FaultPlan

        plan_path, inner = _split_fault_spec(text)
        return FaultInjectingBackend(
            open_backend(inner), FaultPlan.from_json_file(plan_path)
        )
    path = spec_path(spec)
    if text.startswith(SQLITE_SPEC_PREFIX):
        return SQLiteObjectStoreBackend(path)
    if path.suffix == ".sqlite" or path.is_file():
        return SQLiteObjectStoreBackend(path)
    return LocalDirectoryBackend(path)
