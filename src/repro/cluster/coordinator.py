"""The coordinator: sweep waves in, task batches out, barriers enforced.

:func:`run_distributed_sweep` is the cluster twin of
:func:`repro.sweep.executor.run_sweep`: same inputs (grid / plan /
scenarios), same :class:`~repro.sweep.executor.SweepResult` out — the
reports, counters and golden tests downstream cannot tell the two
apart.  The difference is *where* scenarios run: the coordinator
enqueues each wave of the :class:`~repro.sweep.planner.SweepPlan` as a
batch of durable tasks and any number of workers — spawned locally via
``local_workers`` and/or started by hand from other shells with
``repro worker --queue-dir DIR`` — claim and run them.  (The queue is
a WAL-mode SQLite file: workers on *other machines* can only join via
a filesystem with coherent SQLite locking, which typical NFS is not —
the usual scope is many worker processes on one host.)

**Wave barrier.**  The queue only ever contains tasks of the current
wave: the coordinator enqueues wave *n+1* after every wave-*n* task is
terminal.  That is the whole exactly-once argument, unchanged from the
in-process executor — scenarios within a wave never claim the same
not-yet-computed fingerprint, and everything earlier waves computed is
already in the shared cache.  (The documented exceptions also carry
over: a scenario that fails — or dies — before publishing a claimed
fingerprint leaves it to a later scenario, and a budget prune between
waves may evict entries a later wave then recomputes.  The
per-fingerprint counters keep both visible.)

**Crash handling.**  A worker that dies mid-task stops heartbeating;
the task's lease expires and the next claim re-runs it, resuming from
the stages the dead worker already published (see
:mod:`repro.cluster.queue` for lease/retry semantics).  A task that
exhausts its attempts is ``dead`` and becomes a failed scenario in the
result — failure isolation, exactly as in-process.

**Cache hygiene.**  With ``cache_budget_bytes`` the coordinator prunes
the shared cache down to the budget after every wave barrier (the
"Cache hygiene automation" item): long campaigns stay inside a disk
quota, at the documented risk of recomputing evicted prefixes.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.cluster.queue import Task, TaskQueue, TaskSpec
from repro.pipeline import ArtifactCache
from repro.sweep.executor import (
    ScenarioResult,
    SweepResult,
    _result_from_payload,
    with_trace_context,
)
from repro.telemetry import NULL_TRACER, TelemetryConfig, Tracer, activated
from repro.sweep.grid import Scenario, SweepGrid
from repro.sweep.planner import DEFAULT_TARGETS, ScenarioPlan, SweepPlan, plan_sweep

#: The queue database inside a ``--queue-dir``.
QUEUE_FILENAME = "queue.sqlite"

#: How long the coordinator waits for spawned workers to exit after
#: closing the queue before terminating them.
_SHUTDOWN_GRACE_SECONDS = 30.0


class ClusterError(RuntimeError):
    """The distributed run cannot make progress (no workers left,
    malformed queue state) — distinct from per-scenario failures, which
    are isolated into the result like every other executor."""


def queue_path(queue_dir: Union[str, Path]) -> Path:
    return Path(queue_dir) / QUEUE_FILENAME


# ----------------------------------------------------------------------
# task encoding
# ----------------------------------------------------------------------
def task_spec_for(
    sweep_id: str,
    wave_index: int,
    plan: ScenarioPlan,
    targets: Sequence[str],
    cache_spec: Optional[str],
    max_attempts: int,
    timeout_seconds: Optional[float] = None,
    trace_context: Optional[TelemetryConfig] = None,
) -> TaskSpec:
    """One scenario of one wave as a durable task.

    The config crosses the process boundary as a pickle — internal
    state of one code base, exactly the artifact-cache argument; the
    rest of the row is JSON/text so the queue stays inspectable with
    any sqlite client.  ``trace_context`` (the coordinator's wave span)
    is stamped onto the config so the worker's spans join the sweep's
    trace tree; it is fingerprint-neutral by construction.
    """
    config = with_trace_context(plan.scenario.config, trace_context)
    return TaskSpec(
        task_id=f"{sweep_id}/{wave_index}/{plan.scenario_id}",
        sweep_id=sweep_id,
        wave=wave_index,
        scenario_id=plan.scenario_id,
        config=pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL),
        targets=json.dumps(list(targets)),
        cache_spec=cache_spec,
        max_attempts=max_attempts,
        timeout_seconds=timeout_seconds,
    )


# ----------------------------------------------------------------------
# local worker processes
# ----------------------------------------------------------------------
#: Spawned workers exit on their own after this long without claimable
#: work — the orphan bound for a coordinator that died without cleanup
#: (SIGKILL skips the finally that closes the queue).  Generous enough
#: that healthy wave barriers (sub-second enqueue gaps, plus a budget
#: prune at worst) never trip it.
_SPAWNED_WORKER_MAX_IDLE_SECONDS = 600.0


def spawn_local_worker(
    queue_dir: Union[str, Path],
    index: int,
    lease_seconds: float,
    poll_interval: float = 0.1,
    trace_dir: Optional[Union[str, Path]] = None,
) -> subprocess.Popen:
    """Start one ``repro worker`` subprocess in drain mode.

    stdout/stderr go to ``worker-<index>.log`` inside the queue
    directory, so a worker that dies at import time leaves a post-mortem
    instead of vanishing silently.  The worker carries a max-idle bound:
    if the coordinator is SIGKILLed (no queue close, no reaping), the
    orphan exits by itself instead of polling forever.
    """
    import repro

    queue_dir = Path(queue_dir)
    source_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    python_path = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{source_root}{os.pathsep}{python_path}" if python_path else str(source_root)
    )
    log = open(queue_dir / f"worker-{index}.log", "ab")
    try:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--queue-dir",
                str(queue_dir),
                "--worker-id",
                # Unique across coordinator generations: an orphan of a
                # SIGKILLed coordinator must never share an id with a
                # successor's worker, or the queue's owner-based zombie
                # fencing stops fencing.
                f"local-{index}-{uuid.uuid4().hex[:8]}",
                "--lease-seconds",
                str(lease_seconds),
                "--poll-interval",
                str(poll_interval),
                "--max-idle-seconds",
                str(_SPAWNED_WORKER_MAX_IDLE_SECONDS),
            ]
            + (["--trace-dir", str(trace_dir)] if trace_dir is not None else []),
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )
    finally:
        log.close()  # the child inherited the descriptor


def _reap_workers(workers: List[subprocess.Popen]) -> None:
    deadline = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
    for process in workers:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
def _dead_task_result(plan: ScenarioPlan, task: Task) -> ScenarioResult:
    error = task.error or f"task died after {task.attempts} attempts"
    if task.attempts_log:
        # The one-line summary names every attempt; the machine-readable
        # history travels in SweepResult.dead_letters.
        history = "; ".join(
            f"attempt {entry.get('attempt')}: {entry.get('error')}"
            for entry in task.attempts_log
        )
        error = f"{error} [{history}]"
    return ScenarioResult(
        scenario_id=plan.scenario_id,
        overrides=plan.scenario.overrides_dict(),
        status="failed",
        error=error,
        fingerprints=dict(plan.fingerprints),
    )


def _wait_for_wave(
    queue: TaskQueue,
    sweep_id: str,
    wave_index: int,
    expected: int,
    workers: List[subprocess.Popen],
    poll_interval: float,
    timeout: Optional[float],
    lease_seconds: float,
) -> List[Task]:
    """Block until every task of the wave is terminal (the barrier).

    Polling uses the aggregate status counts — one ``GROUP BY`` row per
    status — instead of re-fetching full task rows (config pickles,
    result payloads) every tick; the full rows are read exactly once,
    after the barrier resolves.

    Abort detection: when every *spawned* worker has exited, external
    workers (joined by hand) may still be draining the wave — a live
    lease on any running task is the progress signal.  The coordinator
    raises only once no live lease has been observed for a full lease
    period with the spawned pool gone, i.e. when nobody can be working.
    """
    started = time.monotonic()
    stalled_since: Optional[float] = None
    while True:
        counts = queue.counts(sweep_id=sweep_id, wave=wave_index)
        terminal = counts.get("done", 0) + counts.get("dead", 0)
        if terminal == expected:
            return queue.tasks(sweep_id=sweep_id, wave=wave_index)
        if workers:
            exit_codes = [process.poll() for process in workers]
            if all(code is not None for code in exit_codes):
                now = time.time()
                rows = queue.tasks(sweep_id=sweep_id, wave=wave_index)
                externally_alive = any(
                    row.status == "running" and (row.lease_expires or 0) > now
                    for row in rows
                )
                if externally_alive:
                    stalled_since = None
                elif stalled_since is None:
                    stalled_since = time.monotonic()
                elif time.monotonic() - stalled_since > lease_seconds:
                    raise ClusterError(
                        f"all {len(workers)} local workers exited "
                        f"(codes {exit_codes}), no external worker holds a "
                        f"lease, and wave {wave_index} is unfinished; "
                        "see worker-*.log in the queue directory"
                    )
        if timeout is not None and time.monotonic() - started > timeout:
            raise ClusterError(
                f"wave {wave_index} did not finish within {timeout:.0f}s "
                f"(statuses: {queue.counts(sweep_id=sweep_id, wave=wave_index)})"
            )
        time.sleep(poll_interval)


def run_distributed_sweep(
    grid: Union[SweepGrid, SweepPlan, Sequence[Scenario]],
    queue_dir: Union[str, Path],
    cache_dir: Union[str, Path],
    targets: Sequence[str] = DEFAULT_TARGETS,
    local_workers: Optional[int] = None,
    lease_seconds: float = 30.0,
    poll_interval: float = 0.1,
    max_attempts: int = 3,
    cache_budget_bytes: Optional[int] = None,
    wave_timeout: Optional[float] = None,
    task_timeout_seconds: Optional[float] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    profiling=None,
) -> SweepResult:
    """Run a sweep's waves through the durable queue; workers compute.

    ``local_workers`` spawns that many drain-mode ``repro worker``
    subprocesses; with ``None``/``0`` the coordinator only enqueues and
    waits — start workers yourself (other shells, other machines
    sharing the queue and cache paths).  ``cache_dir`` is mandatory: a
    distributed sweep without a shared cache would recompute every
    shared prefix per scenario *and* violate the wave schedule's
    premise.  ``task_timeout_seconds`` stamps every task with a
    per-attempt watchdog budget (workers abort attempts that exceed
    it even while heartbeating).  Results, counters and reports are
    shaped exactly like every other executor's (``executor="cluster"``)
    — plus ``dead_letters``: the post-mortem records of quarantined
    tasks, one per scenario that exhausted its attempts.

    ``trace_dir`` turns on telemetry for the whole distributed run: the
    coordinator emits ``sweep``/``wave`` spans under one run id, stamps
    the wave span into every task's trace context (so workers join the
    same tree, see :class:`~repro.cluster.worker.Worker`), and passes
    the directory to spawned workers so their queue-level counters land
    in the same ``trace*.jsonl`` set.  ``profiling`` (a
    :class:`repro.telemetry.ProfilingConfig`) rides the task trace
    context, so every worker profiles its hot spans into the same
    directory's ``profile*.jsonl`` files.
    """
    if profiling is not None and trace_dir is None:
        raise ValueError("profiling requires a trace_dir to write to")
    if cache_dir is None:
        raise ValueError("a distributed sweep requires a shared cache_dir")
    if isinstance(grid, SweepPlan):
        plan = grid
    else:
        scenarios = grid.expand() if isinstance(grid, SweepGrid) else list(grid)
        plan = plan_sweep(scenarios, targets=targets)
    cache_spec = str(cache_dir)
    queue_dir = Path(queue_dir)
    queue_dir.mkdir(parents=True, exist_ok=True)
    queue = TaskQueue(queue_path(queue_dir))
    sweep_id = uuid.uuid4().hex
    # One coordinator per queue directory at a time, by contract: a
    # reused queue may still be 'closed' from the previous run (reopen
    # it so fresh drain-mode workers don't exit on arrival) and may
    # hold non-terminal tasks of a coordinator that died without
    # cleanup (purge them so they cannot starve this sweep's barrier).
    queue.reopen()
    queue.purge_abandoned(sweep_id)

    tracer = (
        Tracer(trace_dir, profiling=profiling)
        if trace_dir is not None
        else NULL_TRACER
    )
    workers: List[subprocess.Popen] = []
    outcomes: Dict[str, ScenarioResult] = {}
    started = time.perf_counter()
    try:
        with activated(tracer):
            with tracer.span(
                "sweep",
                executor="cluster",
                sweep_id=sweep_id,
                scenarios=len(plan.plans),
                waves=len(plan.waves),
            ):
                for index in range(local_workers or 0):
                    workers.append(
                        spawn_local_worker(
                            queue_dir, index, lease_seconds,
                            poll_interval=poll_interval, trace_dir=trace_dir,
                        )
                    )
                for wave_index, wave in enumerate(plan.waves):
                    with tracer.span(
                        "wave", index=wave_index, scenarios=len(wave)
                    ) as wave_span:
                        context = (
                            tracer.context(wave_span.span_id) if tracer else None
                        )
                        queue.enqueue(
                            [
                                task_spec_for(
                                    sweep_id, wave_index, scenario_plan,
                                    plan.targets, cache_spec, max_attempts,
                                    timeout_seconds=task_timeout_seconds,
                                    trace_context=context,
                                )
                                for scenario_plan in wave
                            ]
                        )
                        tasks = _wait_for_wave(
                            queue, sweep_id, wave_index, len(wave), workers,
                            poll_interval, wave_timeout, lease_seconds,
                        )
                        by_scenario = {task.scenario_id: task for task in tasks}
                        for scenario_plan in wave:
                            task = by_scenario[scenario_plan.scenario_id]
                            if task.status == "done" and task.result is not None:
                                outcomes[scenario_plan.scenario_id] = (
                                    _result_from_payload(scenario_plan, task.result)
                                )
                            else:
                                outcomes[scenario_plan.scenario_id] = (
                                    _dead_task_result(scenario_plan, task)
                                )
                        if cache_budget_bytes is not None:
                            ArtifactCache.from_spec(cache_spec).prune(
                                max_bytes=cache_budget_bytes
                            )
    finally:
        queue.close()
        _reap_workers(workers)
        if tracer:
            try:
                quarantined = queue.dead_letters(sweep_id=sweep_id)
            except Exception:
                quarantined = []
            if quarantined:
                tracer.counter(
                    "sweep.dead_letters", value=len(quarantined), sweep_id=sweep_id
                )
            tracer.flush()
    elapsed = time.perf_counter() - started

    results = [outcomes[p.scenario_id] for p in plan.plans]
    return SweepResult(
        targets=plan.targets,
        plan=plan,
        results=results,
        seconds=elapsed,
        executor="cluster",
        cache_dir=cache_spec,
        waves=[[p.scenario_id for p in wave] for wave in plan.waves],
        dead_letters=queue.dead_letters(sweep_id=sweep_id),
    )
