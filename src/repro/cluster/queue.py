"""A durable SQLite task queue with leases, heartbeats and retries.

One queue file coordinates a sweep between a coordinator and any number
of worker processes (``repro worker``).  The design is deliberately
boring: every operation is one short transaction against a single
SQLite database in WAL mode, opened per call — no daemon, no sockets,
no shared connections, safe from any process on the host.

Lifecycle of a task::

    pending ──claim──> running ──complete──> done
       ^                  │
       │   lease expired  │ fail / crash (no heartbeat)
       └──────────────────┘          │
                                     └─ attempts exhausted ──> dead

* **Leases.**  A claim grants the worker an exclusive lease for
  ``lease_seconds``; the worker's heartbeat thread extends it while the
  scenario runs.  A worker that dies (SIGKILL, OOM, power loss) simply
  stops heartbeating: once the lease expires the next ``claim`` by any
  worker returns the task again.  Every lease-state transition is
  guarded by the recorded owner, so a *zombie* — a worker that lost its
  lease but is still running — cannot complete, fail or heartbeat a
  task that has moved on without it.
* **Retries.**  Each claim increments ``attempts``; a task whose lease
  expires with ``attempts >= max_attempts`` is marked ``dead`` instead
  of re-queued, so a scenario that reliably kills its worker cannot
  livelock the sweep.  (A scenario that merely *raises* is not a queue
  failure — the worker publishes the failure payload and the task
  completes; see :mod:`repro.cluster.worker`.)
* **Exactly-once compute.**  The queue guarantees exactly-once
  *assignment* per attempt; exactly-once *compute* is the artifact
  cache's job (re-claimed tasks resume from cached stages, and the
  backend's atomic put-if-absent dedupes the zombie-vs-heir write race).
* **Dead letters.**  Every failure — ``fail``, lease expiry, drain
  ``release`` — appends a ``{"attempt", "owner", "error", "at"}`` entry
  to the task's ``attempts_log``, so a ``dead`` task is a post-mortem
  record (:meth:`TaskQueue.dead_letters`), not just a status.  A
  drain's ``release`` gives the attempt back: being asked to stop is
  not the task's fault.

The ``control`` table carries the coordinator's open/closed state:
workers started with ``--exit-when-closed`` drain the queue and exit
once the coordinator closes it.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry import get_tracer

#: Bump when the queue schema changes.  Version 2 added
#: ``timeout_seconds`` (per-task watchdog budget) and ``attempts_log``
#: (the per-attempt failure history behind dead-letter records);
#: version 3 added ``claimed_at`` (when the current lease was granted,
#: behind the lease-age reporting of ``repro queue status``).  Older
#: files are migrated in place on open (``ALTER TABLE ADD COLUMN``).
QUEUE_SCHEMA_VERSION = 3

#: Queue statuses that will never change again.
TERMINAL_STATUSES = ("done", "dead")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id      TEXT PRIMARY KEY,
    sweep_id     TEXT NOT NULL,
    wave         INTEGER NOT NULL,
    scenario_id  TEXT NOT NULL,
    config       BLOB NOT NULL,
    targets      TEXT NOT NULL,
    cache_spec   TEXT,
    status       TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    owner        TEXT,
    lease_expires REAL,
    result       TEXT,
    error        TEXT,
    enqueued_at  REAL NOT NULL,
    updated_at   REAL NOT NULL,
    timeout_seconds REAL,
    attempts_log TEXT NOT NULL DEFAULT '[]',
    claimed_at   REAL
);
CREATE INDEX IF NOT EXISTS idx_tasks_claim ON tasks (status, wave);
CREATE TABLE IF NOT EXISTS control (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Columns added after schema v1, with their ADD COLUMN clauses — the
#: in-place migration for queue files created by older code.
_MIGRATIONS = (
    ("timeout_seconds", "timeout_seconds REAL"),
    ("attempts_log", "attempts_log TEXT NOT NULL DEFAULT '[]'"),
    ("claimed_at", "claimed_at REAL"),
)

_TASK_COLUMNS = (
    "task_id, sweep_id, wave, scenario_id, config, targets, cache_spec, "
    "status, attempts, max_attempts, owner, lease_expires, result, error, "
    "enqueued_at, updated_at, timeout_seconds, attempts_log, claimed_at"
)


def _appended_log(log_json: Optional[str], entry: Dict[str, object]) -> str:
    """The ``attempts_log`` JSON with one more entry (tolerant of a
    corrupt existing value — history is diagnostic, never load-bearing)."""
    try:
        log = json.loads(log_json) if log_json else []
        if not isinstance(log, list):
            log = []
    except json.JSONDecodeError:
        log = []
    log.append(entry)
    return json.dumps(log, sort_keys=True)


class QueueError(RuntimeError):
    """A malformed queue operation (duplicate task ids, bad spec)."""


@dataclass(frozen=True)
class TaskSpec:
    """What a producer enqueues: one scenario of one sweep wave.

    ``config`` is an opaque byte payload (the coordinator pickles the
    ``PipelineConfig`` — internal state of one code base, the same
    argument the artifact cache makes); ``targets`` is a JSON list of
    pipeline target names; ``cache_spec`` is the shared artifact-cache
    spec every worker must use (see ``ArtifactCache.from_spec``).
    """

    task_id: str
    sweep_id: str
    wave: int
    scenario_id: str
    config: bytes
    targets: str
    cache_spec: Optional[str] = None
    max_attempts: int = 3
    #: Per-attempt wall-clock budget enforced by the worker's watchdog
    #: (distinct from the lease: a stuck worker keeps heartbeating, so
    #: only a deadline on the *work itself* catches it).  ``None`` means
    #: no watchdog.
    timeout_seconds: Optional[float] = None


@dataclass
class Task:
    """One queue row as a consumer sees it."""

    task_id: str
    sweep_id: str
    wave: int
    scenario_id: str
    config: bytes
    targets: str
    cache_spec: Optional[str]
    status: str
    attempts: int
    max_attempts: int
    owner: Optional[str]
    lease_expires: Optional[float]
    result: Optional[Dict[str, object]]
    error: Optional[str]
    enqueued_at: float
    updated_at: float
    timeout_seconds: Optional[float] = None
    #: Per-attempt failure history: ``{"attempt", "owner", "error",
    #: "at"}`` dicts appended on fail / lease expiry / release.
    attempts_log: List[Dict[str, object]] = field(default_factory=list)
    #: When the current lease was granted (``None`` unless running).
    claimed_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def targets_tuple(self) -> tuple:
        return tuple(json.loads(self.targets))


def _task_from_row(row: tuple) -> Task:
    return Task(
        task_id=row[0],
        sweep_id=row[1],
        wave=row[2],
        scenario_id=row[3],
        config=bytes(row[4]),
        targets=row[5],
        cache_spec=row[6],
        status=row[7],
        attempts=row[8],
        max_attempts=row[9],
        owner=row[10],
        lease_expires=row[11],
        result=json.loads(row[12]) if row[12] is not None else None,
        error=row[13],
        enqueued_at=row[14],
        updated_at=row[15],
        timeout_seconds=row[16],
        attempts_log=json.loads(row[17]) if row[17] else [],
        claimed_at=row[18],
    )


class TaskQueue:
    """The durable queue over one SQLite file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)
            # CREATE IF NOT EXISTS leaves pre-existing (v1) tables
            # untouched; add the columns newer code expects in place.
            columns = {row[1] for row in conn.execute("PRAGMA table_info(tasks)")}
            for column, clause in _MIGRATIONS:
                if column not in columns:
                    conn.execute(f"ALTER TABLE tasks ADD COLUMN {clause}")
            conn.execute(
                "INSERT OR IGNORE INTO control (key, value) VALUES ('state', 'open')"
            )
            conn.execute(
                "INSERT OR REPLACE INTO control (key, value) VALUES "
                "('schema_version', ?)",
                (str(QUEUE_SCHEMA_VERSION),),
            )

    @contextlib.contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.isolation_level = None  # explicit transaction control
        try:
            yield conn
        finally:
            conn.close()

    @contextlib.contextmanager
    def _transaction(self) -> Iterator[sqlite3.Connection]:
        """One ``BEGIN IMMEDIATE`` transaction: the write lock is taken
        up front, so a claim's read-check-update is atomic across
        processes."""
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                yield conn
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def enqueue(self, specs: List[TaskSpec]) -> None:
        """Add a batch of tasks (one wave, typically) as ``pending``."""
        now = time.time()
        with self._transaction() as conn:
            for spec in specs:
                try:
                    conn.execute(
                        "INSERT INTO tasks (task_id, sweep_id, wave, scenario_id, "
                        "config, targets, cache_spec, max_attempts, "
                        "timeout_seconds, enqueued_at, updated_at) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            spec.task_id,
                            spec.sweep_id,
                            spec.wave,
                            spec.scenario_id,
                            sqlite3.Binary(spec.config),
                            spec.targets,
                            spec.cache_spec,
                            spec.max_attempts,
                            spec.timeout_seconds,
                            now,
                            now,
                        ),
                    )
                except sqlite3.IntegrityError as exc:
                    raise QueueError(
                        f"task {spec.task_id!r} is already enqueued"
                    ) from exc

    def state(self) -> str:
        """``"open"`` or ``"closed"`` (the coordinator's drain signal)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT value FROM control WHERE key = 'state'"
            ).fetchone()
        return row[0] if row is not None else "open"

    def close(self) -> None:
        """Signal drain: workers with ``exit_when_closed`` stop once no
        claimable task remains.  Enqueued work is still drained."""
        with self._transaction() as conn:
            conn.execute("UPDATE control SET value = 'closed' WHERE key = 'state'")

    def reopen(self) -> None:
        with self._transaction() as conn:
            conn.execute("UPDATE control SET value = 'open' WHERE key = 'state'")

    def purge_abandoned(self, keep_sweep_id: str) -> int:
        """Delete every *other* sweep's rows except its dead tasks.

        A coordinator that died without closing its queue leaves
        pending/running rows behind; workers would happily burn whole
        scenario runtimes computing results nobody will ever collect,
        starving the live sweep's barrier.  A starting coordinator —
        there is one coordinator per queue directory at a time, by
        contract — sweeps them out.  Finished (``done``) rows of past
        sweeps go too: their results were already collected into the
        sweep report, and each row carries a config pickle + result
        payload, so keeping them would grow a reused ``queue.sqlite``
        without bound.  Only ``dead`` rows survive as post-mortem
        material — they are the rare ones worth investigating.
        """
        with self._transaction() as conn:
            cursor = conn.execute(
                "DELETE FROM tasks WHERE sweep_id != ? AND status != 'dead'",
                (keep_sweep_id,),
            )
            return cursor.rowcount

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(
        self, owner: str, lease_seconds: float, now: Optional[float] = None
    ) -> Optional[Task]:
        """Atomically claim one task (lowest wave first).

        Expired leases are swept first: running tasks whose lease has
        lapsed go back to ``pending`` — unless their attempts are
        exhausted, in which case they become ``dead`` — and are then
        eligible for this very claim.  Returns ``None`` when nothing is
        claimable.
        """
        if now is None:
            now = time.time()
        tracer = get_tracer()
        with self._transaction() as conn:
            # Row-wise sweep (instead of two bulk UPDATEs) so each
            # expiry is recorded in the task's attempts_log — the
            # dead-letter history must name every vanished owner.
            expired = conn.execute(
                "SELECT task_id, attempts, max_attempts, owner, attempts_log "
                "FROM tasks WHERE status = 'running' AND lease_expires < ?",
                (now,),
            ).fetchall()
            for task_id, attempts, max_attempts, prev_owner, log_json in expired:
                log = _appended_log(
                    log_json,
                    {
                        "attempt": attempts,
                        "owner": prev_owner,
                        "error": "lease expired (worker died or stopped heartbeating)",
                        "at": now,
                    },
                )
                if tracer:
                    tracer.counter(
                        "queue.lease_expired", task_id=task_id, owner=prev_owner
                    )
                if attempts >= max_attempts:
                    conn.execute(
                        "UPDATE tasks SET status = 'dead', owner = NULL, "
                        "error = COALESCE(error, "
                        "'lease expired; attempts exhausted'), "
                        "attempts_log = ?, updated_at = ?, claimed_at = NULL "
                        "WHERE task_id = ?",
                        (log, now, task_id),
                    )
                    if tracer:
                        tracer.counter("queue.task_dead", task_id=task_id)
                else:
                    conn.execute(
                        "UPDATE tasks SET status = 'pending', owner = NULL, "
                        "attempts_log = ?, updated_at = ?, claimed_at = NULL "
                        "WHERE task_id = ?",
                        (log, now, task_id),
                    )
            row = conn.execute(
                f"SELECT {_TASK_COLUMNS} FROM tasks WHERE status = 'pending' "
                "ORDER BY wave, rowid LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            task = _task_from_row(row)
            lease_expires = now + lease_seconds
            conn.execute(
                "UPDATE tasks SET status = 'running', owner = ?, "
                "lease_expires = ?, attempts = attempts + 1, updated_at = ?, "
                "claimed_at = ? WHERE task_id = ?",
                (owner, lease_expires, now, now, task.task_id),
            )
            task.status = "running"
            task.owner = owner
            task.lease_expires = lease_expires
            task.attempts += 1
            task.updated_at = now
            task.claimed_at = now
            if tracer:
                tracer.counter(
                    "queue.task_claimed",
                    task_id=task.task_id,
                    owner=owner,
                    attempt=task.attempts,
                )
            return task

    def heartbeat(
        self, task_id: str, owner: str, lease_seconds: float
    ) -> bool:
        """Extend the lease; ``False`` means the lease was lost (the
        task expired and moved on) and the worker should stand down."""
        now = time.time()
        with self._transaction() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET lease_expires = ?, updated_at = ? "
                "WHERE task_id = ? AND owner = ? AND status = 'running'",
                (now + lease_seconds, now, task_id, owner),
            )
            return cursor.rowcount == 1

    def complete(
        self, task_id: str, owner: str, result: Dict[str, object]
    ) -> bool:
        """Publish the result and mark ``done``; owner-guarded, so a
        zombie's late completion is rejected (``False``)."""
        now = time.time()
        with self._transaction() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status = 'done', result = ?, owner = NULL, "
                "updated_at = ?, claimed_at = NULL "
                "WHERE task_id = ? AND owner = ? AND status = 'running'",
                (json.dumps(result, sort_keys=True), now, task_id, owner),
            )
            completed = cursor.rowcount == 1
        if completed:
            tracer = get_tracer()
            if tracer:
                tracer.counter("queue.task_completed", task_id=task_id, owner=owner)
        return completed

    def fail(self, task_id: str, owner: str, error: str) -> str:
        """Report an infrastructure failure (the worker could not even
        produce a result payload).  Returns the task's new status:
        ``"pending"`` (will retry), ``"dead"`` (attempts exhausted) or
        ``"lost"`` (the lease had already moved on — no-op).
        """
        now = time.time()
        with self._transaction() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts, attempts_log FROM tasks "
                "WHERE task_id = ? AND owner = ? AND status = 'running'",
                (task_id, owner),
            ).fetchone()
            if row is None:
                return "lost"
            attempts, max_attempts, log_json = row
            status = "dead" if attempts >= max_attempts else "pending"
            log = _appended_log(
                log_json,
                {"attempt": attempts, "owner": owner, "error": error, "at": now},
            )
            conn.execute(
                "UPDATE tasks SET status = ?, owner = NULL, error = ?, "
                "attempts_log = ?, updated_at = ?, claimed_at = NULL "
                "WHERE task_id = ?",
                (status, error, log, now, task_id),
            )
        tracer = get_tracer()
        if tracer:
            tracer.counter(
                "queue.task_failed", task_id=task_id, owner=owner, outcome=status
            )
            if status == "dead":
                tracer.counter("queue.task_dead", task_id=task_id)
        return status

    def release(self, task_id: str, owner: str, reason: str = "released") -> bool:
        """Hand a claimed task back *without burning an attempt*.

        The graceful-drain path: a worker told to stop mid-task returns
        the lease immediately (instead of letting it expire) and the
        attempt counter is decremented — being asked to drain is not a
        failure of the task, and a task drained ``max_attempts`` times
        must not be quarantined for it.  Owner-guarded like every lease
        transition; ``False`` means the lease had already moved on.
        """
        now = time.time()
        with self._transaction() as conn:
            row = conn.execute(
                "SELECT attempts, attempts_log FROM tasks "
                "WHERE task_id = ? AND owner = ? AND status = 'running'",
                (task_id, owner),
            ).fetchone()
            if row is None:
                return False
            attempts, log_json = row
            log = _appended_log(
                log_json,
                {
                    "attempt": attempts,
                    "owner": owner,
                    "error": f"released: {reason}",
                    "at": now,
                },
            )
            conn.execute(
                "UPDATE tasks SET status = 'pending', owner = NULL, "
                "attempts = ?, attempts_log = ?, updated_at = ?, "
                "claimed_at = NULL WHERE task_id = ?",
                (max(attempts - 1, 0), log, now, task_id),
            )
        tracer = get_tracer()
        if tracer:
            tracer.counter(
                "queue.task_released", task_id=task_id, owner=owner, reason=reason
            )
        return True

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def _filtered(
        self, sweep_id: Optional[str], wave: Optional[int]
    ) -> tuple:
        clauses, params = [], []
        if sweep_id is not None:
            clauses.append("sweep_id = ?")
            params.append(sweep_id)
        if wave is not None:
            clauses.append("wave = ?")
            params.append(wave)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def tasks(
        self, sweep_id: Optional[str] = None, wave: Optional[int] = None
    ) -> List[Task]:
        where, params = self._filtered(sweep_id, wave)
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {_TASK_COLUMNS} FROM tasks{where} ORDER BY wave, rowid",
                params,
            ).fetchall()
        return [_task_from_row(row) for row in rows]

    def counts(
        self, sweep_id: Optional[str] = None, wave: Optional[int] = None
    ) -> Dict[str, int]:
        """Status -> number of tasks (missing statuses omitted)."""
        where, params = self._filtered(sweep_id, wave)
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT status, COUNT(*) FROM tasks{where} GROUP BY status",
                params,
            ).fetchall()
        return {status: count for status, count in rows}

    def get(self, task_id: str) -> Optional[Task]:
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_TASK_COLUMNS} FROM tasks WHERE task_id = ?", (task_id,)
            ).fetchone()
        return _task_from_row(row) if row is not None else None

    def dead_letters(
        self, sweep_id: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Post-mortem records of quarantined (``dead``) tasks: the
        final error plus the full per-attempt history — which workers
        tried, what each attempt died of, and when."""
        letters: List[Dict[str, object]] = []
        for task in self.tasks(sweep_id=sweep_id):
            if task.status != "dead":
                continue
            letters.append(
                {
                    "task_id": task.task_id,
                    "sweep_id": task.sweep_id,
                    "wave": task.wave,
                    "scenario_id": task.scenario_id,
                    "attempts": task.attempts,
                    "max_attempts": task.max_attempts,
                    "error": task.error,
                    "attempts_log": task.attempts_log,
                    "enqueued_at": task.enqueued_at,
                    "quarantined_at": task.updated_at,
                }
            )
        return letters

    def status_report(self, now: Optional[float] = None) -> Dict[str, object]:
        """One structured snapshot of the whole queue — what ``repro
        queue status`` renders: open/closed state, per-state counts,
        running-task lease ages, dead-letter records and the full task
        roster (so "did that task retry?" is answerable from outside).
        """
        if now is None:
            now = time.time()
        tasks = self.tasks()
        counts: Dict[str, int] = {}
        running: List[Dict[str, object]] = []
        roster: List[Dict[str, object]] = []
        for task in tasks:
            counts[task.status] = counts.get(task.status, 0) + 1
            # Heartbeats bump updated_at, so for a running task the time
            # in state is measured from when its lease was claimed; for
            # every other state updated_at *is* the transition time.
            if task.status == "running" and task.claimed_at is not None:
                seconds_in_state = now - task.claimed_at
            else:
                seconds_in_state = now - task.updated_at
            roster.append(
                {
                    "task_id": task.task_id,
                    "sweep_id": task.sweep_id,
                    "wave": task.wave,
                    "scenario_id": task.scenario_id,
                    "status": task.status,
                    "attempts": task.attempts,
                    "max_attempts": task.max_attempts,
                    "seconds_in_state": round(seconds_in_state, 3),
                }
            )
            if task.status == "running":
                running.append(
                    {
                        "task_id": task.task_id,
                        "scenario_id": task.scenario_id,
                        "owner": task.owner,
                        "attempts": task.attempts,
                        # How long the current attempt has held its lease
                        # (None for pre-migration rows claimed before the
                        # claimed_at column existed).
                        "lease_age_seconds": (
                            round(now - task.claimed_at, 3)
                            if task.claimed_at is not None
                            else None
                        ),
                        # Time since the last owner-side sign of life
                        # (claim or heartbeat) and until the lease lapses.
                        "seconds_since_update": round(now - task.updated_at, 3),
                        "lease_seconds_remaining": round(
                            (task.lease_expires or now) - now, 3
                        ),
                    }
                )
        return {
            "state": self.state(),
            "total_tasks": len(tasks),
            "counts": counts,
            "running": running,
            "dead_letters": self.dead_letters(),
            "tasks": roster,
        }
