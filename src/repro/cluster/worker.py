"""The worker loop: claim a task, run the pipeline, publish the result.

A worker is one process (``repro worker --queue-dir DIR``, or a
:class:`Worker` instance embedded in-process for tests) cooperating on
one :class:`~repro.cluster.queue.TaskQueue`:

1. **claim** the lowest-wave claimable task under a lease,
2. run the scenario's pipeline targets through the existing
   :class:`~repro.pipeline.PipelineRunner` against the shared artifact
   cache named by the task's ``cache_spec`` — computed stages are
   published to the cache as a side effect (atomic put-if-absent, so a
   zombie twin cannot duplicate-write), and a re-claimed task resumes
   from whatever its dead predecessor already cached,
3. **heartbeat** on a background thread while the scenario runs, so a
   *healthy* long task keeps its lease while a *dead* worker's lease
   lapses in bounded time,
4. **complete** the task with the same picklable result payload the
   in-process sweep executors use (scenario pipeline failures travel
   *inside* that payload — they are results, not queue failures).

Three hardening mechanisms guard the unhappy paths:

* **Watchdog.**  The lease catches *dead* workers; it cannot catch a
  *stuck* one, whose heartbeat thread cheerfully extends the lease of a
  task that will never finish.  The scenario therefore runs on a
  separate thread under a wall-clock deadline (the task's
  ``timeout_seconds``, else the worker's ``task_timeout``); past it the
  task is failed with a watchdog diagnostic — burning an attempt, so a
  scenario that reliably hangs ends up quarantined (``dead``) — and the
  abandoned thread is left to die with the process (Python cannot kill
  a thread; its late cache writes are harmless by put-if-absent, and
  its late result has no lease to land on).
* **Heartbeat failure limit.**  A heartbeat that *raises* (queue file
  unreachable) is tolerated transiently, but after
  ``HEARTBEAT_FAILURE_LIMIT`` consecutive failures — a full lease
  period of silence, after which the queue has re-assigned the task
  anyway — the worker treats its lease as lost and stands down, instead
  of computing a result nobody will accept.
* **Graceful drain.**  :meth:`Worker.request_drain` (wired to SIGTERM
  by the CLI) stops claiming; a second request — or
  ``release_current=True`` — also hands the in-flight task back via the
  queue's ``release`` (attempt refunded) so a preempted machine drains
  in seconds, not a lease period.

A worker that loses its lease mid-run (paused by the OS long enough for
the lease to expire) discards its result: the queue's owner guard would
reject the late ``complete`` anyway, and the heir recomputes nothing
but the uncached suffix.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.cluster.queue import Task, TaskQueue
from repro.pipeline import StageSpec
from repro.telemetry import NULL_TRACER, TelemetryConfig, Tracer, activated

#: How many times per lease period the heartbeat fires.
HEARTBEATS_PER_LEASE = 3

#: Consecutive heartbeat *exceptions* after which the lease is presumed
#: lost — one full lease period of failed extensions, the point at
#: which the queue will have re-assigned the task to someone else.
HEARTBEAT_FAILURE_LIMIT = HEARTBEATS_PER_LEASE

#: How often the supervising loop checks its stop conditions.
_WATCH_TICK_SECONDS = 0.05


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class Worker:
    """One cooperating worker over a task queue.

    ``stages`` overrides the pipeline DAG for in-process/test use (the
    CLI always runs the default DAG — custom stage lists cannot cross a
    process boundary).  ``task_timeout`` is the default per-task
    watchdog budget in seconds (``None`` = none); a task's own
    ``timeout_seconds`` takes precedence.
    """

    def __init__(
        self,
        queue_path: Union[str, Path, TaskQueue],
        worker_id: Optional[str] = None,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.2,
        stages: Optional[Sequence[StageSpec]] = None,
        task_timeout: Optional[float] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        log=None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        # Paths open a real queue; anything else is used as a queue
        # object directly (TaskQueue, or a wrapper like
        # repro.faults.FaultInjectingQueue with the same surface).
        self.queue = (
            TaskQueue(queue_path)
            if isinstance(queue_path, (str, Path))
            else queue_path
        )
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.task_timeout = task_timeout
        self._stages = list(stages) if stages is not None else None
        #: Local default trace directory: tasks whose config carries no
        #: trace context still get traced here (worker-level opt-in via
        #: ``repro worker --trace-dir``); tasks that *do* carry one keep
        #: it, so a coordinator's choice wins and trees stay joined.
        self.trace_dir = os.fspath(trace_dir) if trace_dir is not None else None
        #: Watchdog aborts performed by this worker (for tests/reports).
        self.watchdog_trips = 0
        #: Per-task log sink (a callable taking one line).  The default
        #: prints flushed to stdout, which ``spawn_local_worker``
        #: redirects to ``worker-<n>.log`` — so a multi-worker log
        #: directory greps per task by the structured prefix.
        self._log = log if log is not None else (
            lambda line: print(line, flush=True)
        )
        self._drain = threading.Event()
        self._release_current = threading.Event()

    def _task_log(self, task: Task, message: str) -> None:
        """One structured, greppable line per task event.

        The ``[run/worker/task]`` prefix makes a directory of
        ``worker-*.log`` files joinable with ``repro queue status`` and
        the trace: ``run`` is the sweep's trace run id when the task
        carries a trace context (the id ``trace show`` displays), else
        its queue ``sweep_id``.
        """
        run_id = task.sweep_id
        try:
            context = getattr(pickle.loads(task.config), "telemetry", None)
            if context is not None and getattr(context, "run_id", None):
                run_id = context.run_id
        except Exception:  # noqa: BLE001 - logging must never kill a task
            pass
        self._log(
            f"[{run_id}/{self.worker_id}/{task.task_id}] {message}"
        )

    # ------------------------------------------------------------------
    # drain control (signal handlers and tests call these)
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self, release_current: bool = False) -> None:
        """Stop claiming new tasks; with ``release_current`` also hand
        the in-flight task back (attempt refunded) instead of finishing
        it.  Idempotent and safe from signal handlers/other threads."""
        if release_current:
            self._release_current.set()
        self._drain.set()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_tasks: Optional[int] = None,
        exit_when_closed: bool = True,
        max_idle_seconds: Optional[float] = None,
    ) -> int:
        """Process tasks until a stop condition; returns tasks processed.

        Stop conditions: a drain request; ``max_tasks`` processed; the
        queue is closed and nothing is claimable (``exit_when_closed``
        — the drain handshake with the coordinator); the queue held no
        non-terminal task at all for ``max_idle_seconds`` (a *sweep in
        progress* — sibling workers holding running tasks — never
        counts as idle, so a long wave cannot shed its idle pool
        members; the bound catches coordinators that died without
        closing the queue).  With none of them the worker polls forever
        — that is what a standing worker machine does.
        """
        # The session tracer catches queue-level telemetry (claim /
        # lease-expiry / completion counters) under a per-worker run;
        # per-task spans join the *sweep's* run via the trace context
        # inside each task's config (see :meth:`_execute`).
        session = (
            Tracer(self.trace_dir) if self.trace_dir is not None else NULL_TRACER
        )
        processed = 0
        idle_since: Optional[float] = None
        try:
            with activated(session):
                with session.span("worker", worker=self.worker_id):
                    while True:
                        if self._drain.is_set():
                            break
                        if max_tasks is not None and processed >= max_tasks:
                            break
                        task = self.queue.claim(self.worker_id, self.lease_seconds)
                        if task is None:
                            if exit_when_closed and self.queue.state() == "closed":
                                break
                            now = time.monotonic()
                            if max_idle_seconds is not None:
                                counts = self.queue.counts()
                                live = counts.get("pending", 0) + counts.get(
                                    "running", 0
                                )
                                if live:
                                    idle_since = None  # someone is working
                                elif idle_since is None:
                                    idle_since = now
                                elif now - idle_since >= max_idle_seconds:
                                    break
                            time.sleep(self.poll_interval)
                            continue
                        idle_since = None
                        self.process(task)
                        processed += 1
                        session.flush()
        finally:
            session.flush()
        return processed

    # ------------------------------------------------------------------
    # one task
    # ------------------------------------------------------------------
    def process(self, task: Task) -> bool:
        """Run one claimed task to a terminal report; ``True`` iff this
        worker's completion was accepted (a lost lease, a watchdog
        abort and a drain release all return ``False``)."""
        self._task_log(
            task,
            f"claimed {task.scenario_id} (wave {task.wave}, "
            f"attempt {task.attempts}/{task.max_attempts})",
        )
        stop = threading.Event()
        lease_lost = threading.Event()

        def beat() -> None:
            interval = self.lease_seconds / HEARTBEATS_PER_LEASE
            failures = 0
            while not stop.wait(interval):
                try:
                    alive = self.queue.heartbeat(
                        task.task_id, self.worker_id, self.lease_seconds
                    )
                except Exception:
                    # Transient queue hiccup: keep trying — but only for
                    # a full lease of consecutive silence, after which
                    # the lease has lapsed anyway and the result would
                    # be rejected.  Working on regardless would waste a
                    # whole scenario runtime.
                    failures += 1
                    if failures >= HEARTBEAT_FAILURE_LIMIT:
                        lease_lost.set()
                        return
                    continue
                failures = 0
                if not alive:
                    lease_lost.set()
                    return

        heartbeat_thread = threading.Thread(
            target=beat, name=f"heartbeat-{task.task_id}", daemon=True
        )
        heartbeat_thread.start()

        # The scenario runs on its own (daemon) thread so this one can
        # supervise: watchdog deadline, drain requests, lost leases.
        done = threading.Event()
        outcome: Dict[str, object] = {}

        def execute() -> None:
            try:
                outcome["payload"] = self._execute(task)
            except BaseException as exc:  # noqa: BLE001 - reported below
                outcome["error"] = exc
            finally:
                done.set()

        execute_thread = threading.Thread(
            target=execute, name=f"execute-{task.task_id}", daemon=True
        )
        execute_thread.start()

        timeout = (
            task.timeout_seconds
            if task.timeout_seconds is not None
            else self.task_timeout
        )
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        watchdog_fired = False
        drain_release = False
        while not done.wait(_WATCH_TICK_SECONDS):
            if lease_lost.is_set():
                break
            if self._release_current.is_set():
                drain_release = True
                break
            if deadline is not None and time.monotonic() >= deadline:
                watchdog_fired = True
                break
        stop.set()
        heartbeat_thread.join()

        # Precedence mirrors severity; each guard re-checks ``done`` so
        # a result that slipped in just before the abort still counts.
        if watchdog_fired and not done.is_set():
            self.watchdog_trips += 1
            self._task_log(
                task,
                f"watchdog abort after {timeout:g}s "
                f"(attempt {task.attempts}, still heartbeating)",
            )
            self.queue.fail(
                task.task_id,
                self.worker_id,
                f"watchdog: attempt {task.attempts} exceeded {timeout:g}s "
                f"timeout on {self.worker_id} (stuck, still heartbeating)",
            )
            return False
        if drain_release and not done.is_set():
            self._task_log(task, "released back to queue (graceful drain)")
            self.queue.release(task.task_id, self.worker_id, "graceful drain")
            return False
        if lease_lost.is_set():
            # Another worker owns the task now; our cache writes were
            # deduplicated by put-if-absent, our result is redundant.
            self._task_log(task, "lease lost: discarding result, standing down")
            return False
        error = outcome.get("error")
        if error is not None:
            self._task_log(task, f"failed: {type(error).__name__}: {error}")
            self.queue.fail(
                task.task_id, self.worker_id, f"{type(error).__name__}: {error}"
            )
            return False
        accepted = self.queue.complete(
            task.task_id, self.worker_id, outcome["payload"]  # type: ignore[arg-type]
        )
        self._task_log(
            task, "completed" if accepted else "completed too late (lease lost)"
        )
        return accepted

    def _execute(self, task: Task) -> dict:
        # Imported here so the queue/backends layer stays importable
        # without the sweep machinery (and to avoid import cycles).
        from repro.sweep.executor import _execute_scenario, with_trace_context

        config = pickle.loads(task.config)
        context = getattr(config, "telemetry", None)
        if (
            context is None or not getattr(context, "enabled", False)
        ) and self.trace_dir is not None:
            # Task arrived untraced but this worker opts in: trace it
            # locally (fresh run id — there is no sweep tree to join).
            context = TelemetryConfig(trace_dir=self.trace_dir)
            config = with_trace_context(config, context)
        if context is None or not context.enabled:
            return _execute_scenario(
                config, task.cache_spec, task.targets_tuple(), self._stages
            )
        # One tracer per task attempt, joined to the sweep's tree via
        # the context (shared run id, parented under the coordinator's
        # wave span).  Opening the "task" span *on this thread* makes
        # the pipeline span nest under it, and the ambient activation
        # lets the runner and cache reuse this tracer instead of owning
        # their own.
        tracer = Tracer.from_config(context)
        try:
            with activated(tracer):
                with tracer.span(
                    "task",
                    task_id=task.task_id,
                    scenario_id=task.scenario_id,
                    wave=task.wave,
                    attempt=task.attempts,
                    worker=self.worker_id,
                ):
                    return _execute_scenario(
                        config, task.cache_spec, task.targets_tuple(), self._stages
                    )
        finally:
            tracer.flush()
