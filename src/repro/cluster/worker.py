"""The worker loop: claim a task, run the pipeline, publish the result.

A worker is one process (``repro worker --queue-dir DIR``, or a
:class:`Worker` instance embedded in-process for tests) cooperating on
one :class:`~repro.cluster.queue.TaskQueue`:

1. **claim** the lowest-wave claimable task under a lease,
2. run the scenario's pipeline targets through the existing
   :class:`~repro.pipeline.PipelineRunner` against the shared artifact
   cache named by the task's ``cache_spec`` — computed stages are
   published to the cache as a side effect (atomic put-if-absent, so a
   zombie twin cannot duplicate-write), and a re-claimed task resumes
   from whatever its dead predecessor already cached,
3. **heartbeat** on a background thread while the scenario runs, so a
   *healthy* long task keeps its lease while a *dead* worker's lease
   lapses in bounded time,
4. **complete** the task with the same picklable result payload the
   in-process sweep executors use (scenario pipeline failures travel
   *inside* that payload — they are results, not queue failures).

A worker that loses its lease mid-run (paused by the OS long enough for
the lease to expire) discards its result: the queue's owner guard would
reject the late ``complete`` anyway, and the heir recomputes nothing
but the uncached suffix.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.cluster.queue import Task, TaskQueue
from repro.pipeline import StageSpec

#: How many times per lease period the heartbeat fires.
HEARTBEATS_PER_LEASE = 3


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class Worker:
    """One cooperating worker over a task queue.

    ``stages`` overrides the pipeline DAG for in-process/test use (the
    CLI always runs the default DAG — custom stage lists cannot cross a
    process boundary).
    """

    def __init__(
        self,
        queue_path: Union[str, Path, TaskQueue],
        worker_id: Optional[str] = None,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.2,
        stages: Optional[Sequence[StageSpec]] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.queue = (
            queue_path if isinstance(queue_path, TaskQueue) else TaskQueue(queue_path)
        )
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self._stages = list(stages) if stages is not None else None

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_tasks: Optional[int] = None,
        exit_when_closed: bool = True,
        max_idle_seconds: Optional[float] = None,
    ) -> int:
        """Process tasks until a stop condition; returns tasks processed.

        Stop conditions: ``max_tasks`` processed; the queue is closed
        and nothing is claimable (``exit_when_closed`` — the drain
        handshake with the coordinator); the queue held no non-terminal
        task at all for ``max_idle_seconds`` (a *sweep in progress* —
        sibling workers holding running tasks — never counts as idle,
        so a long wave cannot shed its idle pool members; the bound
        catches coordinators that died without closing the queue).
        With none of them the worker polls forever — that is what a
        standing worker machine does.
        """
        processed = 0
        idle_since: Optional[float] = None
        while True:
            if max_tasks is not None and processed >= max_tasks:
                break
            task = self.queue.claim(self.worker_id, self.lease_seconds)
            if task is None:
                if exit_when_closed and self.queue.state() == "closed":
                    break
                now = time.monotonic()
                if max_idle_seconds is not None:
                    counts = self.queue.counts()
                    live = counts.get("pending", 0) + counts.get("running", 0)
                    if live:
                        idle_since = None  # someone is working: not idle
                    elif idle_since is None:
                        idle_since = now
                    elif now - idle_since >= max_idle_seconds:
                        break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            self.process(task)
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # one task
    # ------------------------------------------------------------------
    def process(self, task: Task) -> bool:
        """Run one claimed task to a terminal report; ``True`` iff this
        worker's completion was accepted (a lost lease returns False)."""
        stop = threading.Event()
        lease_lost = threading.Event()

        def beat() -> None:
            interval = self.lease_seconds / HEARTBEATS_PER_LEASE
            while not stop.wait(interval):
                try:
                    alive = self.queue.heartbeat(
                        task.task_id, self.worker_id, self.lease_seconds
                    )
                except Exception:
                    continue  # transient queue hiccup: keep trying
                if not alive:
                    lease_lost.set()
                    return

        heartbeat_thread = threading.Thread(
            target=beat, name=f"heartbeat-{task.task_id}", daemon=True
        )
        heartbeat_thread.start()
        try:
            payload = self._execute(task)
        except Exception as exc:  # noqa: BLE001 - infra failure -> retry
            stop.set()
            heartbeat_thread.join()
            self.queue.fail(
                task.task_id, self.worker_id, f"{type(exc).__name__}: {exc}"
            )
            return False
        stop.set()
        heartbeat_thread.join()
        if lease_lost.is_set():
            # Another worker owns the task now; our cache writes were
            # deduplicated by put-if-absent, our result is redundant.
            return False
        return self.queue.complete(task.task_id, self.worker_id, payload)

    def _execute(self, task: Task) -> dict:
        # Imported here so the queue/backends layer stays importable
        # without the sweep machinery (and to avoid import cycles).
        from repro.sweep.executor import _execute_scenario

        config = pickle.loads(task.config)
        return _execute_scenario(
            config, task.cache_spec, task.targets_tuple(), self._stages
        )
