"""Distributed sweep execution: queue, workers, coordinator, backends.

The cluster subsystem fans the waves of a planned sweep
(:mod:`repro.sweep.planner`) out to cooperating worker processes:

* :mod:`repro.cluster.backends` — pluggable :class:`CacheBackend`
  object stores behind the artifact cache (local directory, SQLite
  object store) with atomic put-if-absent for concurrent writers,
* :mod:`repro.cluster.queue` — a durable SQLite task queue with
  leases, heartbeats and retry-on-lease-expiry,
* :mod:`repro.cluster.worker` — the worker loop: claim a task, run the
  pipeline stages, publish artifacts and the result,
* :mod:`repro.cluster.coordinator` — turns sweep waves into task
  batches, enforces wave barriers, collects a
  :class:`~repro.sweep.executor.SweepResult`.

CLI entry points: ``repro worker --queue-dir DIR`` and ``repro sweep
--distributed --queue-dir DIR --cache-dir DIR [--local-workers N]``.
See the "Distributed sweeps" section of ``docs/architecture.md``.

This module keeps its eager imports dependency-free (``backends`` and
``queue`` are pure stdlib) because :mod:`repro.pipeline.artifacts`
imports the backends; the coordinator/worker layers — which import the
pipeline and sweep packages back — load lazily on first attribute
access.
"""

from repro.cluster.backends import (
    BackendError,
    CacheBackend,
    LocalDirectoryBackend,
    MemoryBackend,
    ObjectStat,
    PersistentBackendError,
    SQLiteObjectStoreBackend,
    TransientBackendError,
    open_backend,
)
from repro.cluster.queue import Task, TaskQueue, TaskSpec
from repro.cluster.retry import (
    DEFAULT_RETRY_POLICY,
    RetryExhausted,
    RetryingBackend,
    RetryPolicy,
    with_retries,
)

_LAZY = {
    "run_distributed_sweep": ("repro.cluster.coordinator", "run_distributed_sweep"),
    "ClusterError": ("repro.cluster.coordinator", "ClusterError"),
    "Worker": ("repro.cluster.worker", "Worker"),
}

__all__ = [
    "BackendError",
    "CacheBackend",
    "ClusterError",
    "DEFAULT_RETRY_POLICY",
    "LocalDirectoryBackend",
    "MemoryBackend",
    "ObjectStat",
    "PersistentBackendError",
    "RetryExhausted",
    "RetryPolicy",
    "RetryingBackend",
    "SQLiteObjectStoreBackend",
    "Task",
    "TaskQueue",
    "TaskSpec",
    "TransientBackendError",
    "Worker",
    "open_backend",
    "run_distributed_sweep",
    "with_retries",
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
