#!/usr/bin/env python3
"""Figure 1: how a single relationship flip changes the customer tree.

Reproduces the paper's illustrative example: the customer tree of AS1
when the link AS1-AS2 is (a) provider-to-customer versus (b)
peer-to-peer.  In (a) AS1 reaches every AS through p2c links; in (b) its
tree shrinks to {AS1, AS3}.

The example then repeats the exercise on a larger synthetic topology:
it picks a planted hybrid link and shows how the IPv6 customer tree of
its provider-side AS differs between the (misinferred) IPv4 relationship
and the actual IPv6 relationship.

Run with::

    python examples/figure1_customer_tree.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.annotation import ToRAnnotation
from repro.core.customer_tree import customer_tree
from repro.core.relationships import AFI, HybridType, Relationship
from repro.datasets import figure1_scenario
from repro.topology import TopologyConfig, generate_topology


def paper_example() -> None:
    scenario = figure1_scenario()
    tree_a = customer_tree(scenario.annotation_p2c, scenario.ROOT)
    tree_b = customer_tree(scenario.annotation_p2p, scenario.ROOT)
    rows = [
        ("(a) AS1-AS2 is p2c", f"tree = {sorted(tree_a.members)} (size {tree_a.size})"),
        ("(b) AS1-AS2 is p2p", f"tree = {sorted(tree_b.members)} (size {tree_b.size})"),
    ]
    print(format_table(rows, title="Figure 1 — customer tree of AS1", label_header="variant"))
    print()


def synthetic_example() -> None:
    topology = generate_topology(
        TopologyConfig(seed=5, tier1_count=6, tier2_count=40, tier3_count=160)
    )
    ipv6 = ToRAnnotation.from_graph(topology.graph, AFI.IPV6)
    ipv4 = ToRAnnotation.from_graph(topology.graph, AFI.IPV4)
    # Pick a planted peering-for-IPv4 / transit-for-IPv6 hybrid link.
    candidates = [
        link
        for link, hybrid_type in topology.hybrid_links.items()
        if hybrid_type is HybridType.PEER4_TRANSIT6
    ]
    if not candidates:
        print("(no peer4/transit6 hybrid link in this synthetic topology)")
        return
    link = candidates[0]
    provider = link.a if ipv6.get(link.a, link.b) is Relationship.P2C else link.b
    with_transit = customer_tree(ipv6, provider)
    misinferred = ipv6.copy()
    misinferred.set_canonical(link, ipv4.get_canonical(link))
    without_transit = customer_tree(misinferred, provider)
    rows = [
        (f"actual IPv6 ({ipv6.get(provider, link.other(provider))})",
         f"customer tree of AS{provider}: {with_transit.size} ASes, depth {with_transit.depth}"),
        (f"IPv4 label applied ({ipv4.get(provider, link.other(provider))})",
         f"customer tree of AS{provider}: {without_transit.size} ASes, depth {without_transit.depth}"),
    ]
    print(
        format_table(
            rows,
            title=f"Same effect on a synthetic hybrid link {link}",
            label_header="annotation used",
        )
    )


def main() -> None:
    paper_example()
    synthetic_example()


if __name__ == "__main__":
    main()
