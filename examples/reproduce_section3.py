#!/usr/bin/env python3
"""Reproduce the Section-3 statistics of the paper on a synthetic snapshot.

Prints the same rows the paper reports inline in Section 3 (path/link
counts, inference coverage, hybrid links and their type mix, hybrid path
visibility, valley paths and the reachability-motivated subset), next to
the values the paper measured on the real August-2010 data.

Run with::

    python examples/reproduce_section3.py            # paper-scale snapshot
    python examples/reproduce_section3.py --small    # quick small snapshot
"""

from __future__ import annotations

import argparse

from repro.analysis import compute_section3, format_table
from repro.datasets import build_snapshot, paper_scale_config, small_config

#: The values reported by the paper for August 2010 (absolute counts are
#: not expected to match a synthetic snapshot; the shapes should).
PAPER_VALUES = {
    "IPv6 AS paths": "346,649",
    "IPv6 AS links": "10,535",
    "IPv4/IPv6 (dual-stack) links": "7,618",
    "IPv6 links with relationship": "7,651 (72%)",
    "dual-stack links with relationship": "6,160 (81%)",
    "hybrid links": "779 (13%)",
    "hybrid: p2p IPv4 / transit IPv6": "67%",
    "hybrid: p2p IPv6 / transit IPv4": "~33%",
    "hybrid: reversed transit": "1 link",
    "IPv6 paths crossing a hybrid link": ">28%",
    "IPv6 valley paths": "13%",
    "valley paths needed for reachability": "16%",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true", help="use the small test-sized snapshot"
    )
    args = parser.parse_args()

    config = small_config() if args.small else paper_scale_config()
    print(f"Building the synthetic snapshot ({config.topology.total_ases} ASes)...")
    snapshot = build_snapshot(config)
    print(f"  archived records: {len(snapshot.archive)}")
    print(f"  observations:     {len(snapshot.observations)}\n")

    print("Running the measurement pipeline (inference, hybrid, valley analysis)...")
    artifacts = compute_section3(snapshot.store, snapshot.registry)

    rows = []
    for label, measured in artifacts.report.rows():
        rows.append((label, f"{measured:<22} | paper: {PAPER_VALUES.get(label, '-')}"))
    print()
    print(
        format_table(
            rows,
            title="Section 3 — measured (synthetic) vs paper (August 2010)",
            value_header="measured | paper",
        )
    )


if __name__ == "__main__":
    main()
