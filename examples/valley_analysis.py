#!/usr/bin/env python3
"""Valley paths in the IPv6 plane and the reachability argument.

Reproduces the Section-3 valley analysis on a synthetic snapshot:

* the fraction of IPv6 AS paths violating the valley-free rule,
* how many of those valley paths have *no* valley-free alternative (the
  paper's "relaxation of the valley-free rule in order to expand the
  reachability of IPv6 prefixes"), and
* how partitioned the IPv6 plane would be under strict valley-free
  routing (ablation A2 in DESIGN.md), starting from the peering-dispute
  scenario described in the paper's footnote.

Run with::

    python examples/valley_analysis.py
"""

from __future__ import annotations

from repro.analysis import analyze_reachability, format_summary
from repro.analysis.stats import compute_section3
from repro.core.relationships import AFI
from repro.core.valley import ValleyReason
from repro.datasets import build_snapshot, small_config


def main() -> None:
    print("Building the synthetic snapshot...")
    snapshot = build_snapshot(small_config())
    artifacts = compute_section3(snapshot.store, snapshot.registry)

    valley = artifacts.valley
    print()
    print(format_summary(valley.summary(), title="IPv6 valley-path analysis"))
    print("\nPaper: 13% of IPv6 paths are valley paths; 16% of those are needed")
    print("for reachability (the IPv6 plane is partitioned under valley-free routing).\n")

    if snapshot.dispute_links:
        print("Peering disputes modelled in this snapshot (IPv6-only de-peering):")
        for link in snapshot.dispute_links:
            print(f"  {link} — bridged by relaxed exports at a shared customer")
        print()

    example = next(
        (vp for vp in valley.valley_paths if vp.reason is ValleyReason.REACHABILITY),
        None,
    )
    if example is not None:
        print("Example reachability-motivated valley path (observer -> origin):")
        print("  " + " -> ".join(f"AS{asn}" for asn in example.path))
        print()

    print("Valley-free reachability of the IPv6 plane under strict export rules")
    annotation = snapshot.ground_truth_annotation(AFI.IPV6)
    ases = [asn for asn in snapshot.graph.ases_in(AFI.IPV6) if annotation.neighbors(asn)]
    report = analyze_reachability(annotation, ases=ases[:80])
    print(format_summary(report.summary(), title="Strict valley-free reachability"))


if __name__ == "__main__":
    main()
