#!/usr/bin/env python3
"""Figure 2: correcting the most visible hybrid links step by step.

Starting from the *plane-agnostic* IPv6 annotation (every dual-stack link
carries its IPv4 relationship — the artifact the paper attributes to the
existing ToR algorithms), this example corrects the hybrid links one at a
time in decreasing IPv6 path-visibility order and prints the average
shortest valley-free path length and the diameter of the union of the
IPv6 customer trees after every step — the two series plotted in
Figure 2.  A random-order control shows that the visibility ranking
matters.

Run with::

    python examples/figure2_correction.py            # paper-scale snapshot
    python examples/figure2_correction.py --small    # quick small snapshot
"""

from __future__ import annotations

import argparse

from repro.analysis import compute_section3, format_series, format_summary
from repro.core.correction import CorrectionExperiment, plane_agnostic_annotation
from repro.core.relationships import AFI
from repro.datasets import build_snapshot, paper_scale_config, small_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the small snapshot")
    parser.add_argument("--top", type=int, default=20, help="number of links to correct")
    args = parser.parse_args()

    config = small_config() if args.small else paper_scale_config()
    print(f"Building the synthetic snapshot ({config.topology.total_ases} ASes)...")
    snapshot = build_snapshot(config)
    print("Running the measurement pipeline...")
    artifacts = compute_section3(snapshot.store, snapshot.registry)

    reference = artifacts.inference.annotation(AFI.IPV6)
    misinferred = plane_agnostic_annotation(
        reference, artifacts.inference.annotation(AFI.IPV4)
    )
    experiment = CorrectionExperiment(misinferred, reference)
    hybrid_links = artifacts.hybrid.hybrid_link_set()

    print(f"Correcting up to {args.top} hybrid links by IPv6 path visibility...\n")
    series = experiment.run_with_visibility(
        hybrid_links, artifacts.visibility, top=args.top
    )
    print(
        format_series(
            "corrected links",
            {"avg path length": series.averages, "diameter": series.diameters},
            title="Figure 2 — customer-tree metrics while correcting hybrid links",
        )
    )
    print()
    print(format_summary(series.improvement(), title="Start vs end"))
    print("\nPaper (real August-2010 data): average 3.8 -> 2.23, diameter 11 -> 7.")

    control = experiment.run_random_order(hybrid_links, count=args.top, seed=1)
    print()
    print(
        format_summary(
            control.improvement(), title="Control: random correction order"
        )
    )


if __name__ == "__main__":
    main()
