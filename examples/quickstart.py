#!/usr/bin/env python3
"""Quickstart: build a synthetic snapshot and inspect hybrid relationships.

This example walks through the library's public API end to end:

1. build a small synthetic "August 2010"-like snapshot (topology, BGP
   propagation, collectors, IRR documentation),
2. run the Communities + LocPrf relationship inference on the archived
   observations,
3. detect the hybrid IPv4/IPv6 links, and
4. print the most visible hybrid links together with their per-plane
   relationships.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_summary, format_table
from repro.core.combined_inference import CombinedInference
from repro.core.hybrid import HybridDetector
from repro.core.relationships import AFI
from repro.core.visibility import build_visibility_index
from repro.datasets import build_snapshot, small_config


def main() -> None:
    print("Building a small synthetic snapshot (topology + BGP propagation)...")
    snapshot = build_snapshot(small_config())
    print(
        f"  {len(snapshot.graph)} ASes, "
        f"{len(snapshot.observations)} observations from "
        f"{len(snapshot.collectors)} collectors\n"
    )

    print("Running the Communities + LocPrf relationship inference...")
    inference = CombinedInference(snapshot.registry).infer(snapshot.store)
    for afi in (AFI.IPV4, AFI.IPV6):
        coverage = inference.coverage[afi]
        print(
            f"  {afi}: relationship recovered for "
            f"{coverage.annotated_links}/{coverage.total_links} visible links "
            f"({coverage.fraction:.0%})"
        )
    print()

    print("Detecting hybrid IPv4/IPv6 relationships...")
    detector = HybridDetector(
        inference.annotation(AFI.IPV4), inference.annotation(AFI.IPV6)
    )
    report = detector.detect()
    print(format_summary(report.summary(), title="Hybrid link detection"))
    print()

    validation = detector.validate(report, snapshot.true_hybrid_links)
    print(
        "Validation against the planted ground truth: "
        f"precision={validation.precision:.2f} recall={validation.recall:.2f}\n"
    )

    print("Most visible hybrid links in the IPv6 AS paths:")
    visibility = build_visibility_index(
        snapshot.observations_for(AFI.IPV6), afi=AFI.IPV6
    )
    rows = []
    for link, count in visibility.rank_links(report.hybrid_link_set())[:10]:
        entry = detector.classify(link)
        rows.append(
            (
                str(link),
                f"{entry.ipv4}/{entry.ipv6} ({entry.hybrid_type}), in {count} paths",
            )
        )
    print(format_table(rows, label_header="link", value_header="IPv4/IPv6 relationship"))


if __name__ == "__main__":
    main()
